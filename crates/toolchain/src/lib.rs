//! The backend-agnostic toolchain layer.
//!
//! HeteroGen's repair loop observes the HLS toolchain through exactly five
//! signals — diagnostics, pass/fail, output values, latency, compile cost —
//! so the loop itself should not care *which* toolchain produces them. This
//! crate defines that seam:
//!
//! * [`Toolchain`] — the five-signal trait every backend implements
//!   ([`Toolchain::style_check`], [`Toolchain::compile`],
//!   [`Toolchain::simulate`], [`Toolchain::cost_model`], plus a
//!   [`BackendInfo`] descriptor);
//! * [`SimBackend`] — the default backend, wrapping the `hls_sim` simulated
//!   toolchain in a named device profile (and an alternative
//!   [`SimBackend::embedded_profile`] with different resource finitization
//!   and cost scaling, proving the seam is real);
//! * three composable middleware decorators re-expressing the repair
//!   engine's cross-cutting concerns:
//!   [`Memoized`] (fingerprint-keyed evaluation cache),
//!   [`Resilient`] (fault-injection consultation + transient retry), and
//!   [`Traced`] (invocation events), stacked as
//!   `Memoized(Resilient(Traced(backend)))`.
//!
//! # Middleware stack semantics
//!
//! The stack order is load-bearing:
//!
//! * a **cache hit** in [`Memoized`] returns before the retry layer is
//!   consulted — a memoized candidate can never fault again;
//! * [`Resilient`] consults its [`FaultInjector`] *before* delegating
//!   inward, so a faulted attempt never reaches [`Traced`] or the backend —
//!   trace events fire once per *logical* invocation, not once per retry;
//! * a transient fault that outlives the [`RetryPolicy`] surfaces as
//!   [`ToolchainError::is_exhausted`], which displays byte-identically to
//!   the permanent fault a hand-rolled retry loop would synthesize.
//!
//! Like `NullSink`/`NoFaults` elsewhere in the workspace, the stack is
//! zero-cost when off: monomorphized over `NoFaults` the injector
//! consultation compiles away, and over `NullSink` no event is constructed.
//!
//! Workers in the repair search evaluate through this stack but must not
//! emit events (the merge-phase emission rule of `heterogen-trace`), so the
//! search instantiates [`Traced`] with `NullSink` and keeps its own
//! merge-phase emission; [`Traced`] with a real sink is for single-threaded
//! backend drivers such as `reproduce toolchain`.
//!
//! # Examples
//!
//! ```
//! use heterogen_faults::{NoFaults, RetryPolicy};
//! use heterogen_toolchain::{Memoized, Resilient, SimBackend, Toolchain, Traced};
//! use heterogen_trace::NullSink;
//!
//! let backend = SimBackend::default_profile();
//! let stack = Memoized::new(Resilient::new(
//!     Traced::new(&backend, NullSink),
//!     NoFaults,
//!     RetryPolicy::default(),
//! ));
//! let p = minic::parse("void kernel(int x) { int a[x]; }").unwrap();
//! let fp = minic::fingerprint_program(&p);
//! let eval = stack.evaluate(&p, fp, false).unwrap();
//! assert!(!eval.diags.unwrap().is_empty()); // unknown-size array
//! ```

use heterogen_faults::{Fault, FaultInjector, FaultSite, RetryPolicy};
use heterogen_trace::{Event, TraceSink};
use hls_sim::{check_program, check_style, ErrorCategory, FpgaSimulator, HlsDiagnostic};
pub use hls_sim::{CompileCostModel, ScheduleModel, SimResult, StyleViolation, ToolchainError};
use minic::Program;
use minic_exec::{ArgValue, ExecEngine};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Descriptor of one toolchain backend: identity plus the device-profile
/// constants that shape its schedules and billing.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendInfo {
    /// Stable backend name (also used in [`Event::ToolchainInvoked`]).
    pub name: String,
    /// Target device / part the backend synthesizes for.
    pub device: String,
    /// Memory ports per unpartitioned array.
    pub memory_ports: u32,
    /// Hard cap on combined per-loop speedup.
    pub max_speedup: f64,
    /// Base simulated minutes per full compile.
    pub compile_base_min: f64,
    /// Additional simulated minutes per line of code compiled.
    pub compile_per_loc_min: f64,
    /// Simulated minutes per co-simulated test.
    pub sim_per_test_min: f64,
    /// One-line human description.
    pub description: String,
}

impl fmt::Display for BackendInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "backend {}", self.name)?;
        writeln!(f, "  device:          {}", self.device)?;
        writeln!(f, "  memory ports:    {} per array", self.memory_ports)?;
        writeln!(f, "  max speedup:     {:.0}x", self.max_speedup)?;
        writeln!(
            f,
            "  compile cost:    {:.2} min + {:.3} min/LoC",
            self.compile_base_min, self.compile_per_loc_min
        )?;
        writeln!(f, "  co-sim per test: {:.4} min", self.sim_per_test_min)?;
        write!(f, "  {}", self.description)
    }
}

/// Outcome of one full compile: the diagnostics the backend reported and the
/// transient faults the middleware absorbed getting them.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Every diagnostic found (empty means synthesizable).
    pub diags: Vec<HlsDiagnostic>,
    /// Transient faults absorbed (0 for plain backends; [`Resilient`] adds
    /// the retries it performed).
    pub transients: u32,
}

/// Outcome of co-simulating one test input.
#[derive(Debug, Clone)]
pub struct Simulated {
    /// Behaviour and latency estimate.
    pub result: SimResult,
    /// Transient faults absorbed (0 for plain backends).
    pub transients: u32,
}

/// Memoized result of style-checking and fully compiling one candidate.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The cheap style pre-pass found nothing.
    pub style_clean: bool,
    /// Pretty-printed line count (drives the compile-cost billing); only
    /// meaningful when `diags` is present.
    pub loc: usize,
    /// Full-compile diagnostics: the synthesizability check plus style
    /// violations (a real toolchain rejects both; the cheap pre-pass only
    /// sees the latter's subset). `None` when the enabled style gate
    /// rejected the candidate before the toolchain was ever invoked.
    pub diags: Option<Arc<Vec<HlsDiagnostic>>>,
    /// Transient toolchain faults absorbed (and retried through) while
    /// computing this result. Replayed by the search's merge phase into
    /// resilience accounting and trace events.
    pub transients: u32,
}

/// A pluggable HLS toolchain: the five signals HeteroGen's repair loop
/// observes, behind one object-safe trait.
///
/// `key` parameters are stable evaluation keys (the candidate's structural
/// fingerprint, or a fingerprint/test-index mix). Plain backends ignore
/// them; the middleware layers use them for memoization and reproducible
/// fault schedules.
pub trait Toolchain: Send + Sync {
    /// Identity and device-profile constants.
    fn info(&self) -> BackendInfo;

    /// The cost model billing this backend's invocations in simulated
    /// minutes.
    fn cost_model(&self) -> CompileCostModel;

    /// The cheap coding-style pre-pass (the paper's checker ablation
    /// subject).
    fn style_check(&self, p: &Program) -> Vec<StyleViolation>;

    /// One full HLS compile returning every diagnostic found.
    ///
    /// # Errors
    ///
    /// Fails when the toolchain *infrastructure* fails (as opposed to the
    /// program being unsynthesizable, which is reported via diagnostics).
    fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError>;

    /// Whether the backend can co-simulate this program at all (a resolvable
    /// top function exists).
    fn can_simulate(&self, p: &Program) -> bool {
        p.top_function_name().is_some()
    }

    /// Co-simulates one test input.
    ///
    /// # Errors
    ///
    /// Fails when the simulation infrastructure fails.
    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        key: u64,
    ) -> Result<Simulated, ToolchainError>;

    /// The execution engine this backend evaluates candidates with. Part of
    /// every memoization key: TreeWalk and Bytecode runs sharing a process
    /// (or a persistent store) must never alias each other's verdicts.
    fn engine(&self) -> ExecEngine {
        ExecEngine::default()
    }

    /// Co-simulates one test input under a resource allowance slashed by
    /// `factor` (an injected fuel spike). Backends that cannot model spikes
    /// report the invocation as transient so the retry layer reruns it
    /// unspiked.
    ///
    /// # Errors
    ///
    /// Returns a transient [`ToolchainError`] when the slashed allowance is
    /// exhausted.
    fn simulate_spiked(
        &self,
        p: &Program,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        let _ = (p, args, factor);
        Err(ToolchainError::transient(
            "hls_sim",
            attempt,
            "fuel spike exhausted the simulation budget",
        ))
    }

    /// Style-checks and (unless the enabled style gate rejects it first)
    /// fully compiles `p` — the repair search's per-candidate evaluation.
    /// Style violations are appended to the compile diagnostics, as a real
    /// toolchain reports both.
    ///
    /// # Errors
    ///
    /// Propagates [`Toolchain::compile`] infrastructure failures.
    fn evaluate(
        &self,
        p: &Program,
        fingerprint: u64,
        style_gate: bool,
    ) -> Result<EvalResult, ToolchainError> {
        let style = self.style_check(p);
        let style_clean = style.is_empty();
        if style_gate && !style_clean {
            return Ok(EvalResult {
                style_clean,
                loc: 0,
                diags: None,
                transients: 0,
            });
        }
        let compiled = self.compile(p, fingerprint)?;
        let mut diags = compiled.diags;
        for v in style {
            diags.push(HlsDiagnostic::new(
                "STYLE",
                v.message,
                ErrorCategory::LoopParallelization,
            ));
        }
        Ok(EvalResult {
            style_clean,
            loc: minic::loc(p),
            diags: Some(Arc::new(diags)),
            transients: compiled.transients,
        })
    }

    /// Convenience: the diagnostics of one compile, with infrastructure
    /// failures collapsed to "no diagnostics" (callers that need the
    /// distinction use [`Toolchain::compile`]).
    fn diagnose(&self, p: &Program) -> Vec<HlsDiagnostic> {
        let fp = minic::fingerprint_program(p);
        self.compile(p, fp).map(|c| c.diags).unwrap_or_default()
    }
}

macro_rules! delegate_toolchain {
    () => {
        fn info(&self) -> BackendInfo {
            (**self).info()
        }
        fn cost_model(&self) -> CompileCostModel {
            (**self).cost_model()
        }
        fn style_check(&self, p: &Program) -> Vec<StyleViolation> {
            (**self).style_check(p)
        }
        fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError> {
            (**self).compile(p, key)
        }
        fn can_simulate(&self, p: &Program) -> bool {
            (**self).can_simulate(p)
        }
        fn simulate(
            &self,
            p: &Program,
            args: &[ArgValue],
            key: u64,
        ) -> Result<Simulated, ToolchainError> {
            (**self).simulate(p, args, key)
        }
        fn simulate_spiked(
            &self,
            p: &Program,
            args: &[ArgValue],
            factor: u32,
            attempt: u32,
        ) -> Result<SimResult, ToolchainError> {
            (**self).simulate_spiked(p, args, factor, attempt)
        }
        fn engine(&self) -> ExecEngine {
            (**self).engine()
        }
        fn evaluate(
            &self,
            p: &Program,
            fingerprint: u64,
            style_gate: bool,
        ) -> Result<EvalResult, ToolchainError> {
            (**self).evaluate(p, fingerprint, style_gate)
        }
        fn diagnose(&self, p: &Program) -> Vec<HlsDiagnostic> {
            (**self).diagnose(p)
        }
    };
}

impl<T: Toolchain + ?Sized> Toolchain for &T {
    delegate_toolchain!();
}

impl<T: Toolchain + ?Sized> Toolchain for Arc<T> {
    delegate_toolchain!();
}

/// The default backend: the workspace's simulated HLS toolchain (`hls_sim`)
/// under a named device profile.
///
/// Two profiles ship with the crate. [`SimBackend::default_profile`]
/// reproduces the pre-refactor pipeline byte-for-byte (default schedule
/// model, default cost model); [`SimBackend::embedded_profile`] models a
/// small embedded part with single-port BRAM, a lower speedup ceiling and a
/// slower compile farm, so the same repair loop produces visibly different
/// reports — the proof that the [`Toolchain`] seam is real.
#[derive(Debug, Clone)]
pub struct SimBackend {
    name: &'static str,
    device: &'static str,
    description: &'static str,
    schedule: ScheduleModel,
    costs: CompileCostModel,
    engine: ExecEngine,
}

impl SimBackend {
    /// The datacenter profile — identical constants to the pre-refactor
    /// direct-call pipeline.
    pub fn default_profile() -> SimBackend {
        SimBackend {
            name: "hls_sim",
            device: "xcvu9p (datacenter)",
            description: "Reference profile: dual-port BRAM, 24x speedup ceiling, \
                          datacenter compile farm.",
            schedule: ScheduleModel::default(),
            costs: CompileCostModel::default(),
            engine: ExecEngine::default(),
        }
    }

    /// An embedded-class profile: single-port BRAM (half the unroll
    /// headroom), an 8x speedup ceiling, deeper pipeline fill, and a compile
    /// farm twice as slow per invocation.
    pub fn embedded_profile() -> SimBackend {
        SimBackend {
            name: "hls_sim-embedded",
            device: "xc7z020 (embedded)",
            description: "Embedded profile: single-port BRAM, 8x speedup ceiling, \
                          slow on-prem compile server.",
            schedule: ScheduleModel {
                cycles_per_op: 1.25,
                default_ports: 1,
                max_speedup: 8.0,
                pipeline_fill: 10.0,
                loop_control_ops: 6.0,
            },
            costs: CompileCostModel {
                style_check_min: 0.05,
                full_compile_base_min: 4.0,
                full_compile_per_loc_min: 0.05,
                sim_per_test_min: 0.004,
                cpu_per_test_min: 0.0002,
            },
            engine: ExecEngine::default(),
        }
    }

    /// Overrides the execution engine used for co-simulation (both engines
    /// are observably identical; `TreeWalk` is the reference path kept for
    /// differential testing).
    pub fn with_engine(mut self, engine: ExecEngine) -> SimBackend {
        self.engine = engine;
        self
    }

    /// The execution engine this backend simulates with.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Resolves a backend by CLI name. `"default"` (aliases `"hls_sim"`,
    /// `"datacenter"`) and `"embedded"` (aliases `"zynq"`,
    /// `"hls_sim-embedded"`) are known.
    pub fn by_name(name: &str) -> Option<SimBackend> {
        match name {
            "default" | "hls_sim" | "datacenter" => Some(SimBackend::default_profile()),
            "embedded" | "zynq" | "hls_sim-embedded" => Some(SimBackend::embedded_profile()),
            _ => None,
        }
    }

    /// The canonical CLI names of the shipped profiles.
    pub fn names() -> &'static [&'static str] {
        &["default", "embedded"]
    }

    fn simulator<'p>(&self, p: &'p Program) -> Result<FpgaSimulator<'p>, ToolchainError> {
        FpgaSimulator::new(p)
            .map(|s| s.with_model(self.schedule).with_engine(self.engine))
            .map_err(|e| ToolchainError::permanent("hls_sim", e.to_string()))
    }
}

impl Toolchain for SimBackend {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: self.name.to_string(),
            device: self.device.to_string(),
            memory_ports: self.schedule.default_ports,
            max_speedup: self.schedule.max_speedup,
            compile_base_min: self.costs.full_compile_base_min,
            compile_per_loc_min: self.costs.full_compile_per_loc_min,
            sim_per_test_min: self.costs.sim_per_test_min,
            description: self.description.to_string(),
        }
    }

    fn cost_model(&self) -> CompileCostModel {
        self.costs
    }

    fn style_check(&self, p: &Program) -> Vec<StyleViolation> {
        check_style(p)
    }

    fn engine(&self) -> ExecEngine {
        self.engine
    }

    fn compile(&self, p: &Program, _key: u64) -> Result<Compiled, ToolchainError> {
        Ok(Compiled {
            diags: check_program(p),
            transients: 0,
        })
    }

    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        _key: u64,
    ) -> Result<Simulated, ToolchainError> {
        Ok(Simulated {
            result: self.simulator(p)?.run(args),
            transients: 0,
        })
    }

    fn simulate_spiked(
        &self,
        p: &Program,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        self.simulator(p)?.run_spiked(args, factor, attempt)
    }
}

/// Evaluation cache keyed by `(fingerprint, engine)`, cloneable so several
/// middleware stacks (e.g. a fault-injected one and a fault-free one for the
/// initial compile) can share one memo table. The engine joins the key
/// because two stacks over differently-engined backends may share one cache
/// in one process — a TreeWalk run must never inherit a Bytecode verdict (or
/// vice versa), even though today's backends produce identical diagnostics,
/// or an engine-differential regression would be silently masked. The cache
/// holds *computation* only — simulated-clock billing is still charged per
/// sequential-accounting rules by the search's merge phase.
#[derive(Debug, Clone, Default)]
pub struct EvalCache(Arc<Mutex<HashMap<(u64, ExecEngine), EvalResult>>>);

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Looks up a fingerprint evaluated under `engine`.
    pub fn get(&self, fp: u64, engine: ExecEngine) -> Option<EvalResult> {
        self.0.lock().unwrap().get(&(fp, engine)).cloned()
    }

    /// Stores one evaluation computed under `engine`.
    pub fn insert(&self, fp: u64, engine: ExecEngine, r: EvalResult) {
        self.0.lock().unwrap().insert((fp, engine), r);
    }

    /// Entries cached.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }
}

/// Middleware: memoizes [`Toolchain::evaluate`] by structural fingerprint.
///
/// A cache hit returns before any inner layer runs — no fault injection, no
/// retries, no trace events. Errors are *not* cached, so a faulted
/// evaluation is retried from scratch if the same fingerprint comes back.
#[derive(Debug, Clone)]
pub struct Memoized<T> {
    cache: EvalCache,
    inner: T,
}

impl<T: Toolchain> Memoized<T> {
    /// Wraps `inner` with a fresh cache.
    pub fn new(inner: T) -> Memoized<T> {
        Memoized {
            cache: EvalCache::new(),
            inner,
        }
    }

    /// Wraps `inner` sharing an existing cache.
    pub fn sharing(cache: EvalCache, inner: T) -> Memoized<T> {
        Memoized { cache, inner }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }
}

impl<T: Toolchain> Toolchain for Memoized<T> {
    fn info(&self) -> BackendInfo {
        self.inner.info()
    }
    fn cost_model(&self) -> CompileCostModel {
        self.inner.cost_model()
    }
    fn style_check(&self, p: &Program) -> Vec<StyleViolation> {
        self.inner.style_check(p)
    }
    fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError> {
        self.inner.compile(p, key)
    }
    fn can_simulate(&self, p: &Program) -> bool {
        self.inner.can_simulate(p)
    }
    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        key: u64,
    ) -> Result<Simulated, ToolchainError> {
        self.inner.simulate(p, args, key)
    }
    fn simulate_spiked(
        &self,
        p: &Program,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        self.inner.simulate_spiked(p, args, factor, attempt)
    }
    fn engine(&self) -> ExecEngine {
        self.inner.engine()
    }
    fn evaluate(
        &self,
        p: &Program,
        fingerprint: u64,
        style_gate: bool,
    ) -> Result<EvalResult, ToolchainError> {
        let engine = self.inner.engine();
        if let Some(hit) = self.cache.get(fingerprint, engine) {
            return Ok(hit);
        }
        let r = self.inner.evaluate(p, fingerprint, style_gate)?;
        self.cache.insert(fingerprint, engine, r.clone());
        Ok(r)
    }
    fn diagnose(&self, p: &Program) -> Vec<HlsDiagnostic> {
        self.inner.diagnose(p)
    }
}

/// Key identifying one persisted evaluation verdict across processes: the
/// candidate's structural fingerprint, its node-id labeling fingerprint
/// (diagnostics carry `NodeId`s, and print-identical programs with
/// different labelings must not share a verdict — the same contract as the
/// exec compile cache), the backend profile that produced it, the engine it
/// ran under, and whether the style gate was on (the gate changes what
/// [`Toolchain::evaluate`] returns for the same program).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// `minic::fingerprint_program` of the candidate.
    pub program_fp: u64,
    /// `minic::fingerprint_node_ids` of the candidate.
    pub node_fp: u64,
    /// Backend profile name ([`BackendInfo::name`]).
    pub backend: String,
    /// Execution engine the verdict was computed under.
    pub engine: ExecEngine,
    /// Whether the cheap style gate was enabled for this evaluation.
    pub style_gate: bool,
}

/// Key identifying one persisted fault-free differential-test verdict:
/// the candidate's structural fingerprint, the reference program it was
/// compared against, the kernel entry point, the (capped) test suite, and
/// the backend that simulated it.
///
/// Deliberately excludes the execution engine and thread count — both are
/// documented to produce bit-identical differential reports — so a verdict
/// recorded under one engine or thread count warms a run under any other,
/// matching the fuzz-corpus key's contract.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DiffKey {
    /// `minic::fingerprint_program` of the candidate.
    pub program_fp: u64,
    /// `minic::fingerprint_program` of the reference (original) program.
    pub reference_fp: u64,
    /// Kernel (entry function) under differential test.
    pub kernel: String,
    /// [`diff_tests_fingerprint`] of the capped test suite.
    pub tests_fp: u64,
    /// Backend profile name ([`BackendInfo::name`]).
    pub backend: String,
}

/// A persisted differential-test result. The two floats are the *only*
/// observables of a fault-free differential evaluation (the one trace
/// event it emits is derived from them), so replaying a `DiffVerdict`
/// reproduces the evaluation bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffVerdict {
    /// Fraction of tests with identical observable behaviour.
    pub pass_ratio: f64,
    /// Mean FPGA latency over the tests (ms).
    pub fpga_latency_ms: f64,
}

/// Stable cross-process fingerprint of a differential test suite (FNV-1a
/// over a tagged little-endian byte encoding; floats hash by bit pattern,
/// so two suites differing by one ULP get different keys).
pub fn diff_tests_fingerprint(tests: &[Vec<ArgValue>]) -> u64 {
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h = (*h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn eat_ints(h: &mut u64, xs: &[i128]) {
        eat(h, &(xs.len() as u64).to_le_bytes());
        for x in xs {
            eat(h, &x.to_le_bytes());
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    eat(&mut h, &(tests.len() as u64).to_le_bytes());
    for case in tests {
        eat(&mut h, &(case.len() as u64).to_le_bytes());
        for arg in case {
            match arg {
                ArgValue::Int(v) => {
                    eat(&mut h, &[1]);
                    eat(&mut h, &v.to_le_bytes());
                }
                ArgValue::Float(f) => {
                    eat(&mut h, &[2]);
                    eat(&mut h, &f.to_bits().to_le_bytes());
                }
                ArgValue::IntArray(xs) => {
                    eat(&mut h, &[3]);
                    eat_ints(&mut h, xs);
                }
                ArgValue::FloatArray(xs) => {
                    eat(&mut h, &[4]);
                    eat(&mut h, &(xs.len() as u64).to_le_bytes());
                    for f in xs {
                        eat(&mut h, &f.to_bits().to_le_bytes());
                    }
                }
                ArgValue::IntStream(xs) => {
                    eat(&mut h, &[5]);
                    eat_ints(&mut h, xs);
                }
            }
        }
    }
    h
}

/// A durable verdict memo — the seam [`Persisted`] stores through.
///
/// Implemented by `heterogen-store`'s crash-safe log; the trait lives here
/// so the repair engine can stack [`Persisted`] middleware without
/// depending on the storage crate. Implementations must be infallible at
/// this interface: a broken store degrades to misses (`get_verdict` returns
/// `None`) and dropped writes, never errors — persistence is an
/// optimization, not a correctness dependency.
///
/// The differential-verdict methods default to a disabled cache (always
/// miss, drop every put) so minimal implementations — and the compile
/// memos' own tests — keep working unchanged.
pub trait VerdictStore: Send + Sync {
    /// Looks up a verdict persisted by an earlier run (or this one).
    fn get_verdict(&self, key: &VerdictKey) -> Option<EvalResult>;

    /// Durably records one verdict.
    fn put_verdict(&self, key: &VerdictKey, r: &EvalResult);

    /// Looks up a persisted fault-free differential-test verdict.
    fn get_diff(&self, _key: &DiffKey) -> Option<DiffVerdict> {
        None
    }

    /// Durably records one fault-free differential-test verdict.
    fn put_diff(&self, _key: &DiffKey, _v: &DiffVerdict) {}
}

/// Middleware: checks a durable [`VerdictStore`] before the in-memory
/// layers and records every freshly computed verdict, stacked outermost as
/// `Persisted(Memoized(Resilient(Traced(backend))))`.
///
/// With no store attached every method delegates straight inward — the
/// disabled layer costs one branch per evaluation. A store hit returns
/// before [`Memoized`] (and therefore before any fault injection, retry or
/// trace event), exactly like an in-memory cache hit; because the search's
/// merge phase bills simulated-clock cost *independently* of how
/// `evaluate` was satisfied, a warm store changes wall-clock time only —
/// never the search trajectory, stats, or trace bytes.
#[derive(Clone)]
pub struct Persisted<T> {
    inner: T,
    store: Option<Arc<dyn VerdictStore>>,
    backend: String,
}

impl<T: fmt::Debug> fmt::Debug for Persisted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Persisted")
            .field("inner", &self.inner)
            .field("backend", &self.backend)
            .field("enabled", &self.store.is_some())
            .finish()
    }
}

impl<T: Toolchain> Persisted<T> {
    /// Wraps `inner`, persisting through `store` (`None` disables the
    /// layer).
    pub fn new(inner: T, store: Option<Arc<dyn VerdictStore>>) -> Persisted<T> {
        let backend = inner.info().name;
        Persisted {
            inner,
            store,
            backend,
        }
    }
}

impl<T: Toolchain> Toolchain for Persisted<T> {
    fn info(&self) -> BackendInfo {
        self.inner.info()
    }
    fn cost_model(&self) -> CompileCostModel {
        self.inner.cost_model()
    }
    fn style_check(&self, p: &Program) -> Vec<StyleViolation> {
        self.inner.style_check(p)
    }
    fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError> {
        self.inner.compile(p, key)
    }
    fn can_simulate(&self, p: &Program) -> bool {
        self.inner.can_simulate(p)
    }
    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        key: u64,
    ) -> Result<Simulated, ToolchainError> {
        self.inner.simulate(p, args, key)
    }
    fn simulate_spiked(
        &self,
        p: &Program,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        self.inner.simulate_spiked(p, args, factor, attempt)
    }
    fn engine(&self) -> ExecEngine {
        self.inner.engine()
    }
    fn evaluate(
        &self,
        p: &Program,
        fingerprint: u64,
        style_gate: bool,
    ) -> Result<EvalResult, ToolchainError> {
        let Some(store) = &self.store else {
            return self.inner.evaluate(p, fingerprint, style_gate);
        };
        let key = VerdictKey {
            program_fp: fingerprint,
            node_fp: minic::fingerprint_node_ids(p),
            backend: self.backend.clone(),
            engine: self.inner.engine(),
            style_gate,
        };
        if let Some(hit) = store.get_verdict(&key) {
            return Ok(hit);
        }
        let r = self.inner.evaluate(p, fingerprint, style_gate)?;
        store.put_verdict(&key, &r);
        Ok(r)
    }
    fn diagnose(&self, p: &Program) -> Vec<HlsDiagnostic> {
        self.inner.diagnose(p)
    }
}

/// Middleware: consults a [`FaultInjector`] before every compile/simulate
/// and retries transient faults under a [`RetryPolicy`].
///
/// Workers never sleep — the deterministic backoff schedule is *accounted*,
/// not waited out: the absorbed-transient count travels out in
/// [`Compiled::transients`] / [`Simulated::transients`] (or in
/// [`ToolchainError::absorbed_transients`] on failure) for the caller's
/// merge phase to replay into its resilience ledger. A transient fault that
/// outlives the policy surfaces as [`ToolchainError::is_exhausted`]; a
/// poison fault panics for the caller's isolation boundary to catch.
///
/// With a disabled injector ([`heterogen_faults::NoFaults`]) every method
/// delegates straight to the inner layer.
#[derive(Debug, Clone)]
pub struct Resilient<T, I> {
    inner: T,
    injector: I,
    retry: RetryPolicy,
}

impl<T: Toolchain, I: FaultInjector> Resilient<T, I> {
    /// Wraps `inner` with fault consultation and a retry policy.
    pub fn new(inner: T, injector: I, retry: RetryPolicy) -> Resilient<T, I> {
        Resilient {
            inner,
            injector,
            retry,
        }
    }
}

impl<T: Toolchain, I: FaultInjector> Toolchain for Resilient<T, I> {
    fn info(&self) -> BackendInfo {
        self.inner.info()
    }
    fn cost_model(&self) -> CompileCostModel {
        self.inner.cost_model()
    }
    fn style_check(&self, p: &Program) -> Vec<StyleViolation> {
        self.inner.style_check(p)
    }
    fn can_simulate(&self, p: &Program) -> bool {
        self.inner.can_simulate(p)
    }
    fn engine(&self) -> ExecEngine {
        self.inner.engine()
    }
    fn simulate_spiked(
        &self,
        p: &Program,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        self.inner.simulate_spiked(p, args, factor, attempt)
    }

    fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError> {
        if !self.injector.enabled() {
            return self.inner.compile(p, key);
        }
        let mut attempt: u32 = 0;
        loop {
            match self.injector.fault(FaultSite::HlsCheck, key, attempt) {
                Some(Fault::Poison) => heterogen_faults::poison(FaultSite::HlsCheck, key),
                Some(Fault::Permanent) => {
                    return Err(ToolchainError::permanent(
                        "hls_check",
                        "synthesis front-end rejected the invocation",
                    ));
                }
                Some(Fault::Transient) | Some(Fault::FuelSpike { .. }) => {
                    attempt += 1;
                    if self.retry.delay_before(attempt).is_none() {
                        return Err(ToolchainError::exhausted(
                            "hls_check",
                            attempt,
                            "synthesis front-end crashed; the invocation may be retried",
                        ));
                    }
                }
                None => {
                    let mut c = self.inner.compile(p, key)?;
                    c.transients += attempt;
                    return Ok(c);
                }
            }
        }
    }

    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        key: u64,
    ) -> Result<Simulated, ToolchainError> {
        if !self.injector.enabled() {
            return self.inner.simulate(p, args, key);
        }
        let mut attempt: u32 = 0;
        loop {
            match self.injector.fault(FaultSite::HlsSim, key, attempt) {
                Some(Fault::Poison) => heterogen_faults::poison(FaultSite::HlsSim, key),
                Some(Fault::Permanent) => {
                    return Err(ToolchainError::permanent(
                        "hls_sim",
                        "co-simulation backend rejected the invocation",
                    ));
                }
                Some(Fault::Transient) => {
                    attempt += 1;
                    if self.retry.delay_before(attempt).is_none() {
                        return Err(ToolchainError::exhausted(
                            "hls_sim",
                            attempt,
                            "co-simulation crashed; the invocation may be retried",
                        ));
                    }
                }
                Some(Fault::FuelSpike { factor }) => {
                    match self.inner.simulate_spiked(p, args, factor, attempt) {
                        Ok(result) => {
                            return Ok(Simulated {
                                result,
                                transients: attempt,
                            });
                        }
                        Err(e) if e.is_transient() => {
                            attempt += 1;
                            if self.retry.delay_before(attempt).is_none() {
                                let msg = e.message().to_string();
                                return Err(ToolchainError::exhausted("hls_sim", attempt, msg));
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    let mut s = self.inner.simulate(p, args, key)?;
                    s.transients += attempt;
                    return Ok(s);
                }
            }
        }
    }
}

/// Middleware: emits one [`Event::ToolchainInvoked`] per invocation that
/// actually reaches the backend.
///
/// Placed *inside* [`Resilient`], a faulted attempt never reaches this layer
/// — events fire exactly once per logical invocation, never per retry — and
/// inside [`Memoized`], cache hits emit nothing. Gated on
/// [`TraceSink::enabled`], so the `NullSink` instantiation compiles the
/// emission away (the repair search's worker stacks rely on this: worker
/// threads must never emit).
#[derive(Debug, Clone)]
pub struct Traced<T, S> {
    inner: T,
    sink: S,
}

impl<T: Toolchain, S: TraceSink> Traced<T, S> {
    /// Wraps `inner`, reporting invocations on `sink`.
    pub fn new(inner: T, sink: S) -> Traced<T, S> {
        Traced { inner, sink }
    }
}

impl<T: Toolchain, S: TraceSink> Toolchain for Traced<T, S> {
    fn info(&self) -> BackendInfo {
        self.inner.info()
    }
    fn cost_model(&self) -> CompileCostModel {
        self.inner.cost_model()
    }
    fn style_check(&self, p: &Program) -> Vec<StyleViolation> {
        self.inner.style_check(p)
    }
    fn can_simulate(&self, p: &Program) -> bool {
        self.inner.can_simulate(p)
    }
    fn engine(&self) -> ExecEngine {
        self.inner.engine()
    }
    fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError> {
        if self.sink.enabled() {
            self.sink.emit(&Event::ToolchainInvoked {
                backend: self.inner.info().name,
                op: "compile".to_string(),
                fingerprint: key,
            });
        }
        self.inner.compile(p, key)
    }
    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        key: u64,
    ) -> Result<Simulated, ToolchainError> {
        if self.sink.enabled() {
            self.sink.emit(&Event::ToolchainInvoked {
                backend: self.inner.info().name,
                op: "simulate".to_string(),
                fingerprint: key,
            });
        }
        self.inner.simulate(p, args, key)
    }
    fn simulate_spiked(
        &self,
        p: &Program,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        self.inner.simulate_spiked(p, args, factor, attempt)
    }
}

/// A shared revocation flag for [`DrainGate`].
///
/// Cloning yields a handle to the *same* flag: a server hands one clone to
/// every in-flight job's gate and keeps one to flip at shutdown.
#[derive(Debug, Clone, Default)]
pub struct DrainSignal(Arc<std::sync::atomic::AtomicBool>);

impl DrainSignal {
    /// Creates a signal in the "not draining" state.
    pub fn new() -> DrainSignal {
        DrainSignal::default()
    }

    /// Flips the signal: every [`DrainGate`] sharing it starts refusing
    /// invocations. Idempotent.
    pub fn drain(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether [`DrainSignal::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Middleware: revokes the toolchain when a [`DrainSignal`] flips.
///
/// Until the signal drains, every method delegates transparently. After,
/// each fallible invocation returns a *permanent* [`ToolchainError`] at
/// site `"drain"` — so a repair search in flight hits its existing
/// permanent-fault degradation path and returns `Ok(PipelineReport)` with a
/// `Degradation` record instead of being aborted mid-candidate. Placed
/// *innermost* in the middleware stack (wrapping the raw backend), so
/// [`Resilient`] propagates the revocation without retrying and `Memoized`
/// never caches it.
#[derive(Debug, Clone)]
pub struct DrainGate<T> {
    inner: T,
    signal: DrainSignal,
}

impl<T: Toolchain> DrainGate<T> {
    /// Wraps `inner`; invocations fail once `signal` drains.
    pub fn new(inner: T, signal: DrainSignal) -> DrainGate<T> {
        DrainGate { inner, signal }
    }

    fn revoked(&self) -> Result<(), ToolchainError> {
        if self.signal.is_draining() {
            Err(ToolchainError::permanent(
                "drain",
                "server drain revoked the evaluation budget",
            ))
        } else {
            Ok(())
        }
    }
}

impl<T: Toolchain> Toolchain for DrainGate<T> {
    fn info(&self) -> BackendInfo {
        self.inner.info()
    }
    fn cost_model(&self) -> CompileCostModel {
        self.inner.cost_model()
    }
    fn style_check(&self, p: &Program) -> Vec<StyleViolation> {
        self.inner.style_check(p)
    }
    fn can_simulate(&self, p: &Program) -> bool {
        self.inner.can_simulate(p)
    }
    fn engine(&self) -> ExecEngine {
        self.inner.engine()
    }
    fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError> {
        self.revoked()?;
        self.inner.compile(p, key)
    }
    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        key: u64,
    ) -> Result<Simulated, ToolchainError> {
        self.revoked()?;
        self.inner.simulate(p, args, key)
    }
    fn simulate_spiked(
        &self,
        p: &Program,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        self.revoked()?;
        self.inner.simulate_spiked(p, args, factor, attempt)
    }
    fn evaluate(
        &self,
        p: &Program,
        fingerprint: u64,
        style_gate: bool,
    ) -> Result<EvalResult, ToolchainError> {
        self.revoked()?;
        self.inner.evaluate(p, fingerprint, style_gate)
    }
    fn diagnose(&self, p: &Program) -> Vec<HlsDiagnostic> {
        self.inner.diagnose(p)
    }
}

/// A scriptable in-memory backend for middleware tests: configurable
/// diagnostics and style violations, atomic call counters, constant
/// simulation results.
#[derive(Debug, Default)]
pub struct MockToolchain {
    /// Diagnostics every [`Toolchain::compile`] reports.
    pub diags: Vec<HlsDiagnostic>,
    /// Violations every [`Toolchain::style_check`] reports.
    pub style: Vec<StyleViolation>,
    /// Engine reported by [`Toolchain::engine`] (keys memoization).
    pub engine: ExecEngine,
    compiles: std::sync::atomic::AtomicU32,
    simulates: std::sync::atomic::AtomicU32,
    style_checks: std::sync::atomic::AtomicU32,
}

impl MockToolchain {
    /// A mock reporting a clean bill of health on every signal.
    pub fn clean() -> MockToolchain {
        MockToolchain::default()
    }

    /// Times [`Toolchain::compile`] reached the backend.
    pub fn compile_calls(&self) -> u32 {
        self.compiles.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Times [`Toolchain::simulate`] reached the backend.
    pub fn simulate_calls(&self) -> u32 {
        self.simulates.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Times [`Toolchain::style_check`] was invoked.
    pub fn style_check_calls(&self) -> u32 {
        self.style_checks.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl Toolchain for MockToolchain {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "mock".to_string(),
            device: "none".to_string(),
            memory_ports: 2,
            max_speedup: 1.0,
            compile_base_min: 0.0,
            compile_per_loc_min: 0.0,
            sim_per_test_min: 0.0,
            description: "scriptable test backend".to_string(),
        }
    }

    fn cost_model(&self) -> CompileCostModel {
        CompileCostModel::default()
    }

    fn style_check(&self, _p: &Program) -> Vec<StyleViolation> {
        self.style_checks
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.style.clone()
    }

    fn engine(&self) -> ExecEngine {
        self.engine
    }

    fn compile(&self, _p: &Program, _key: u64) -> Result<Compiled, ToolchainError> {
        self.compiles
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(Compiled {
            diags: self.diags.clone(),
            transients: 0,
        })
    }

    fn simulate(
        &self,
        _p: &Program,
        _args: &[ArgValue],
        _key: u64,
    ) -> Result<Simulated, ToolchainError> {
        self.simulates
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(Simulated {
            result: SimResult {
                outcome: minic_exec::Outcome::default(),
                estimate: hls_sim::FpgaEstimate {
                    cycles: 1.0,
                    latency_ms: 1.0,
                    effective_ops: 1.0,
                },
            },
            transients: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heterogen_faults::NoFaults;
    use heterogen_trace::{JsonlSink, NullSink};

    fn prog() -> Program {
        minic::parse("int kernel(int x) { return x * 2; }").unwrap()
    }

    fn fp(p: &Program) -> u64 {
        minic::fingerprint_program(p)
    }

    /// Transient for the first `n` attempts of every invocation, then clean.
    struct TransientFor(u32);
    impl FaultInjector for TransientFor {
        fn fault(&self, _site: FaultSite, _key: u64, attempt: u32) -> Option<Fault> {
            (attempt < self.0).then_some(Fault::Transient)
        }
    }

    /// Never faults, but counts consultations and reports itself enabled.
    #[derive(Default)]
    struct CountingNone(std::sync::atomic::AtomicU32);
    impl CountingNone {
        fn calls(&self) -> u32 {
            self.0.load(std::sync::atomic::Ordering::SeqCst)
        }
    }
    impl FaultInjector for CountingNone {
        fn fault(&self, _site: FaultSite, _key: u64, _attempt: u32) -> Option<Fault> {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            None
        }
    }

    #[test]
    fn cache_hit_skips_the_retry_layer() {
        let mock = MockToolchain::clean();
        let injector = CountingNone::default();
        let stack = Memoized::new(Resilient::new(&mock, &injector, RetryPolicy::default()));
        let p = prog();
        let a = stack.evaluate(&p, fp(&p), true).unwrap();
        let b = stack.evaluate(&p, fp(&p), true).unwrap();
        assert_eq!(mock.compile_calls(), 1, "second evaluation is a cache hit");
        assert_eq!(injector.calls(), 1, "cache hit never consults the injector");
        assert_eq!(a.loc, b.loc);
        assert!(a.style_clean && b.style_clean);
    }

    #[test]
    fn memoized_cache_keys_on_engine_not_just_fingerprint() {
        // Regression companion to the exec compile-cache NodeId-aliasing
        // pin: two stacks sharing one process-wide cache but driving
        // different engines must not serve each other's verdicts.
        let tree = MockToolchain {
            engine: ExecEngine::TreeWalk,
            ..MockToolchain::default()
        };
        let vm = MockToolchain {
            engine: ExecEngine::Bytecode,
            ..MockToolchain::default()
        };
        let cache = EvalCache::new();
        let tree_stack = Memoized::sharing(cache.clone(), &tree);
        let vm_stack = Memoized::sharing(cache.clone(), &vm);
        let p = prog();
        tree_stack.evaluate(&p, fp(&p), false).unwrap();
        assert_eq!(cache.len(), 1);
        vm_stack.evaluate(&p, fp(&p), false).unwrap();
        assert_eq!(
            vm.compile_calls(),
            1,
            "a bytecode run must not inherit the treewalk verdict"
        );
        assert_eq!(cache.len(), 2, "one entry per (fingerprint, engine)");
        // Within one engine the memo still hits.
        tree_stack.evaluate(&p, fp(&p), false).unwrap();
        vm_stack.evaluate(&p, fp(&p), false).unwrap();
        assert_eq!(tree.compile_calls(), 1);
        assert_eq!(vm.compile_calls(), 1);
    }

    /// In-memory [`VerdictStore`] double with hit/put counters.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<HashMap<VerdictKey, EvalResult>>,
        gets: std::sync::atomic::AtomicU32,
        puts: std::sync::atomic::AtomicU32,
    }
    impl VerdictStore for MapStore {
        fn get_verdict(&self, key: &VerdictKey) -> Option<EvalResult> {
            self.gets.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.map.lock().unwrap().get(key).cloned()
        }
        fn put_verdict(&self, key: &VerdictKey, r: &EvalResult) {
            self.puts.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.map.lock().unwrap().insert(key.clone(), r.clone());
        }
    }

    #[test]
    fn persisted_layer_serves_warm_verdicts_before_the_backend() {
        let store: Arc<MapStore> = Arc::new(MapStore::default());
        let mock = MockToolchain::clean();
        let p = prog();
        {
            // Cold process: miss → compute → record.
            let cold = Persisted::new(
                Memoized::new(&mock),
                Some(store.clone() as Arc<dyn VerdictStore>),
            );
            cold.evaluate(&p, fp(&p), false).unwrap();
            cold.evaluate(&p, fp(&p), false).unwrap();
        }
        assert_eq!(mock.compile_calls(), 1);
        assert_eq!(
            store.puts.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "second evaluation hit the store we just wrote"
        );
        // Warm process: fresh in-memory cache, verdict comes from the store
        // and the backend is never consulted.
        let warm = Persisted::new(
            Memoized::new(&mock),
            Some(store.clone() as Arc<dyn VerdictStore>),
        );
        let r = warm.evaluate(&p, fp(&p), false).unwrap();
        assert_eq!(
            mock.compile_calls(),
            1,
            "warm hit never reaches the backend"
        );
        assert!(r.diags.is_some());
        // The key includes the style gate: a gated evaluation is distinct.
        warm.evaluate(&p, fp(&p), true).unwrap();
        assert_eq!(mock.compile_calls(), 2);
        // Disabled layer is transparent (and consults no store).
        let off = Persisted::new(&mock, None);
        off.evaluate(&p, fp(&p), false).unwrap();
        assert_eq!(mock.compile_calls(), 3);
    }

    #[test]
    fn persisted_key_separates_engines_and_backends() {
        let store: Arc<MapStore> = Arc::new(MapStore::default());
        let p = prog();
        let tree = MockToolchain {
            engine: ExecEngine::TreeWalk,
            ..MockToolchain::default()
        };
        let vm = MockToolchain {
            engine: ExecEngine::Bytecode,
            ..MockToolchain::default()
        };
        Persisted::new(&tree, Some(store.clone() as Arc<dyn VerdictStore>))
            .evaluate(&p, fp(&p), false)
            .unwrap();
        Persisted::new(&vm, Some(store.clone() as Arc<dyn VerdictStore>))
            .evaluate(&p, fp(&p), false)
            .unwrap();
        assert_eq!(vm.compile_calls(), 1, "engines never alias in the store");
        let embedded = SimBackend::embedded_profile();
        Persisted::new(&embedded, Some(store.clone() as Arc<dyn VerdictStore>))
            .evaluate(&p, fp(&p), false)
            .unwrap();
        assert_eq!(store.map.lock().unwrap().len(), 3);
    }

    #[test]
    fn retry_exhaustion_converts_transient_to_permanent_through_the_stack() {
        let mock = MockToolchain::clean();
        let stack = Memoized::new(Resilient::new(
            &mock,
            TransientFor(u32::MAX),
            RetryPolicy::default(),
        ));
        let p = prog();
        let err = stack.evaluate(&p, fp(&p), true).unwrap_err();
        assert!(err.is_exhausted());
        assert!(!err.is_transient(), "exhaustion is not retryable");
        // Default policy: 3 retries → 4 transient attempts absorbed.
        assert_eq!(err.absorbed_transients(), 4);
        assert_eq!(mock.compile_calls(), 0, "the backend was never reached");
        assert!(err
            .to_string()
            .starts_with("permanent toolchain fault at hls_check:"));
        // Errors are not cached: the same fingerprint faults afresh.
        let err2 = stack.evaluate(&p, fp(&p), true).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn trace_fires_once_per_logical_evaluation_not_per_retry() {
        let mock = MockToolchain::clean();
        let sink = JsonlSink::new();
        let stack = Memoized::new(Resilient::new(
            Traced::new(&mock, &sink),
            TransientFor(2),
            RetryPolicy::default(),
        ));
        let p = prog();
        let r = stack.evaluate(&p, fp(&p), true).unwrap();
        assert_eq!(r.transients, 2, "two faulted attempts were absorbed");
        assert_eq!(mock.compile_calls(), 1);
        assert_eq!(
            sink.events(),
            1,
            "one toolchain_invoked event despite the retries"
        );
        assert!(sink.contents().contains(r#""event":"toolchain_invoked""#));
        stack.evaluate(&p, fp(&p), true).unwrap();
        assert_eq!(sink.events(), 1, "cache hits emit nothing");
    }

    #[test]
    fn style_gate_rejects_before_any_compile_or_event() {
        let mock = MockToolchain {
            style: vec![StyleViolation {
                message: "pipeline outside loop".to_string(),
                function: Some("kernel".to_string()),
            }],
            ..MockToolchain::default()
        };
        let sink = JsonlSink::new();
        let stack = Memoized::new(Resilient::new(
            Traced::new(&mock, &sink),
            NoFaults,
            RetryPolicy::default(),
        ));
        let p = prog();
        let r = stack.evaluate(&p, fp(&p), true).unwrap();
        assert!(!r.style_clean);
        assert!(r.diags.is_none());
        assert_eq!(mock.compile_calls(), 0);
        assert_eq!(sink.events(), 0);
        // With the gate off the compile happens and style joins the diags.
        let stack_off = Memoized::new(&mock);
        let r = stack_off.evaluate(&p, fp(&p), false).unwrap();
        assert_eq!(r.diags.unwrap().len(), 1);
        assert_eq!(mock.compile_calls(), 1);
    }

    #[test]
    fn default_stack_matches_the_bare_backend() {
        let backend = SimBackend::default_profile();
        let stack = Memoized::new(Resilient::new(
            Traced::new(&backend, NullSink),
            NoFaults,
            RetryPolicy::default(),
        ));
        let p = minic::parse("void kernel(int x) { int a[x]; }").unwrap();
        let through = stack.evaluate(&p, fp(&p), false).unwrap();
        let bare = backend.evaluate(&p, fp(&p), false).unwrap();
        assert_eq!(through.style_clean, bare.style_clean);
        assert_eq!(through.loc, bare.loc);
        assert_eq!(through.diags.unwrap(), bare.diags.unwrap());
        assert_eq!(backend.diagnose(&p).len(), hls_sim::check_program(&p).len());
    }

    #[test]
    fn profiles_are_distinct_and_resolvable() {
        for name in SimBackend::names() {
            assert!(SimBackend::by_name(name).is_some(), "{name}");
        }
        assert!(SimBackend::by_name("nope").is_none());
        let a = SimBackend::default_profile().info();
        let b = SimBackend::embedded_profile().info();
        assert_ne!(a.name, b.name);
        assert!(b.compile_base_min > a.compile_base_min);
        assert!(b.max_speedup < a.max_speedup);
        assert!(a.to_string().contains("xcvu9p"));

        // Same kernel, different latency estimates: the seam is real.
        let p = minic::parse(
            "void kernel(int a[16]) { for (int i = 0; i < 16; i++) { a[i] = a[i] + 1; } }",
        )
        .unwrap();
        let args = vec![ArgValue::IntArray(vec![0; 16])];
        let da = SimBackend::default_profile()
            .simulate(&p, &args, 0)
            .unwrap();
        let db = SimBackend::embedded_profile()
            .simulate(&p, &args, 0)
            .unwrap();
        assert_eq!(da.result.outcome, db.result.outcome, "behaviour agrees");
        assert!(
            db.result.estimate.latency_ms > da.result.estimate.latency_ms,
            "embedded profile is slower: {} vs {}",
            db.result.estimate.latency_ms,
            da.result.estimate.latency_ms
        );
    }

    #[test]
    fn resilient_simulate_replays_fuel_spikes() {
        let backend = SimBackend::default_profile();
        let plan = heterogen_faults::FaultPlan::builder(3)
            .with_fuel_spike_rate(1.0)
            .with_spike_factor(4)
            .build();
        let resilient = Resilient::new(&backend, &plan, RetryPolicy::default());
        let p = prog();
        let args = vec![ArgValue::Int(21)];
        let spiked = resilient.simulate(&p, &args, 11).unwrap();
        let plain = backend.simulate(&p, &args, 11).unwrap();
        assert_eq!(
            spiked.result, plain.result,
            "survivable spike is transparent"
        );
        assert_eq!(spiked.transients, 0);
    }

    #[test]
    fn disabled_injector_compiles_straight_through() {
        let mock = MockToolchain::clean();
        let resilient = Resilient::new(&mock, NoFaults, RetryPolicy::default());
        let p = prog();
        assert!(resilient.compile(&p, 1).unwrap().diags.is_empty());
        assert_eq!(resilient.simulate(&p, &[], 1).unwrap().transients, 0);
        assert_eq!(mock.compile_calls(), 1);
        assert_eq!(mock.simulate_calls(), 1);
    }

    #[test]
    fn drain_gate_is_transparent_until_the_signal_flips() {
        let mock = MockToolchain::clean();
        let signal = DrainSignal::new();
        let gate = DrainGate::new(&mock, signal.clone());
        let p = prog();
        assert!(gate.compile(&p, 1).is_ok());
        assert!(gate.evaluate(&p, fp(&p), true).is_ok());
        assert!(!signal.is_draining());

        signal.drain();
        assert!(signal.is_draining());
        let err = gate.compile(&p, 2).unwrap_err();
        assert!(!err.is_transient(), "revocation must not be retried");
        assert_eq!(err.site(), "drain");
        assert!(gate.simulate(&p, &[], 2).is_err());
        assert!(gate.evaluate(&p, fp(&p), true).is_err());
        // Cloned signals share the flag: a second gate on the same signal is
        // also revoked.
        let other = DrainGate::new(&mock, signal.clone());
        assert!(other.compile(&p, 3).is_err());
        // Non-fallible queries still answer during drain.
        assert!(gate.style_check(&p).is_empty());
    }
}
