//! Automated test input generation for HLS differential testing (paper §4).
//!
//! HeteroGen needs tests to judge behaviour preservation and performance of
//! repair candidates, but real programs rarely ship with tests. This crate
//! reproduces the paper's Algorithm 1: seed inputs are captured at the
//! kernel entry of a host execution (ensuring validity), mutated with
//! HLS-type-aware operators, and kept when they increase branch coverage.
//!
//! # Examples
//!
//! ```
//! use testgen::{fuzz, FuzzConfig};
//!
//! let p = minic::parse("int kernel(int x) { if (x > 0) { return 1; } return 0; }").unwrap();
//! let cfg = FuzzConfig::builder()
//!     .with_idle_stop_min(0.5)
//!     .with_max_execs(300)
//!     .build();
//! let report = fuzz(&p, "kernel", vec![], &cfg).unwrap();
//! assert!(report.coverage > 0.9);
//! ```

pub mod generator;
pub mod mutate;
pub mod spec;

pub use generator::{
    fuzz, fuzz_traced, kernel_seeds_from_host, FuzzConfig, FuzzConfigBuilder, FuzzReport, TestCase,
    MAX_FAILING,
};
pub use mutate::{mutate_case, random_value, MAX_DYNAMIC_LEN};
pub use spec::{kernel_specs, ArgSpec};
