//! Kernel argument specifications derived from the kernel signature.
//!
//! The paper's test generator "analyzes the argument types used in the
//! kernel function and inserts additional type checkers in the fuzzing loop"
//! (Alg. 1 line 5) so that mutated inputs stay HLS-type-valid and exercise
//! kernel logic instead of dying at the entry. An [`ArgSpec`] is that type
//! checker: it bounds scalar ranges by declared bit width and pins array
//! extents to declared sizes.

use minic::types::Type;
use minic::Program;
use minic_exec::ArgValue;

/// The fuzzable shape of one kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSpec {
    /// Integer scalar with the declared width/signedness.
    Int {
        /// Bit width of the declared type.
        bits: u16,
        /// Signedness of the declared type.
        signed: bool,
    },
    /// Floating-point scalar.
    Float,
    /// Integer array.
    IntArray {
        /// Element bit width.
        bits: u16,
        /// Element signedness.
        signed: bool,
        /// Fixed extent (declared size), or `None` for unknown-size arrays.
        len: Option<usize>,
    },
    /// Floating-point array.
    FloatArray {
        /// Fixed extent, or `None` for unknown-size arrays.
        len: Option<usize>,
    },
    /// Integer input stream.
    IntStream {
        /// Element bit width.
        bits: u16,
        /// Element signedness.
        signed: bool,
    },
}

impl ArgSpec {
    /// The inclusive integer range valid for this spec's element type.
    pub fn int_range(&self) -> (i128, i128) {
        let (bits, signed) = match self {
            ArgSpec::Int { bits, signed }
            | ArgSpec::IntArray { bits, signed, .. }
            | ArgSpec::IntStream { bits, signed } => (*bits, *signed),
            _ => (64, true),
        };
        let bits = bits.clamp(1, 63) as u32;
        if signed {
            (-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1)
        } else {
            (0, (1i128 << bits) - 1)
        }
    }

    /// Clamps a candidate integer into the valid range (the "type checker"
    /// of Alg. 1).
    pub fn clamp_int(&self, v: i128) -> i128 {
        let (lo, hi) = self.int_range();
        v.clamp(lo, hi)
    }

    /// Whether an [`ArgValue`] conforms to this spec.
    pub fn accepts(&self, v: &ArgValue) -> bool {
        let (lo, hi) = self.int_range();
        match (self, v) {
            (ArgSpec::Int { .. }, ArgValue::Int(x)) => (lo..=hi).contains(x),
            (ArgSpec::Float, ArgValue::Float(x)) => x.is_finite(),
            (ArgSpec::IntArray { len, .. }, ArgValue::IntArray(xs)) => {
                len.map(|n| xs.len() == n).unwrap_or(!xs.is_empty())
                    && xs.iter().all(|x| (lo..=hi).contains(x))
            }
            (ArgSpec::FloatArray { len }, ArgValue::FloatArray(xs)) => {
                len.map(|n| xs.len() == n).unwrap_or(!xs.is_empty())
                    && xs.iter().all(|x| x.is_finite())
            }
            (ArgSpec::IntStream { .. }, ArgValue::IntStream(xs)) => {
                xs.iter().all(|x| (lo..=hi).contains(x))
            }
            _ => false,
        }
    }
}

/// Derives the argument specs of a kernel from its signature.
///
/// # Errors
///
/// Returns a message when the kernel is missing or a parameter type is not
/// fuzzable (e.g. a struct parameter).
pub fn kernel_specs(p: &Program, kernel: &str) -> Result<Vec<ArgSpec>, String> {
    let f = p
        .function(kernel)
        .ok_or_else(|| format!("kernel `{kernel}` not found"))?;
    let mut specs = Vec::new();
    let resolver = |n: &str| p.typedef(n).cloned();
    for par in &f.params {
        let ty = par.ty.resolve_named(&resolver);
        let spec = match &ty {
            Type::Bool => ArgSpec::Int {
                bits: 1,
                signed: false,
            },
            t if t.is_integer() => ArgSpec::Int {
                bits: t.int_bits().unwrap_or(32),
                signed: t.int_signed().unwrap_or(true),
            },
            t if t.is_float() => ArgSpec::Float,
            Type::Array(elem, _) | Type::Pointer(elem) => {
                let len = match &ty {
                    Type::Array(_, size) => match size {
                        minic::types::ArraySize::Const(n) => Some(*n as usize),
                        minic::types::ArraySize::Named(n) => p.define(n).map(|v| v as usize),
                        minic::types::ArraySize::Runtime(_) | minic::types::ArraySize::Unknown => {
                            None
                        }
                    },
                    _ => None,
                };
                if elem.is_float() {
                    ArgSpec::FloatArray { len }
                } else {
                    ArgSpec::IntArray {
                        bits: elem.int_bits().unwrap_or(32),
                        signed: elem.int_signed().unwrap_or(true),
                        len,
                    }
                }
            }
            Type::Stream(elem) => ArgSpec::IntStream {
                bits: elem.int_bits().unwrap_or(32),
                signed: elem.int_signed().unwrap_or(false),
            },
            other => {
                return Err(format!(
                    "parameter `{}` of type `{other}` is not fuzzable",
                    par.name
                ))
            }
        };
        specs.push(spec);
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_specs_from_signature() {
        let p = minic::parse(
            "void kernel(int n, float x, int a[8], float b[], hls::stream<unsigned> &s) { }",
        )
        .unwrap();
        let specs = kernel_specs(&p, "kernel").unwrap();
        assert_eq!(specs.len(), 5);
        assert_eq!(
            specs[0],
            ArgSpec::Int {
                bits: 32,
                signed: true
            }
        );
        assert_eq!(specs[1], ArgSpec::Float);
        assert_eq!(
            specs[2],
            ArgSpec::IntArray {
                bits: 32,
                signed: true,
                len: Some(8)
            }
        );
        assert_eq!(specs[3], ArgSpec::FloatArray { len: None });
        assert!(matches!(specs[4], ArgSpec::IntStream { .. }));
    }

    #[test]
    fn fpga_types_bound_the_range() {
        let p = minic::parse("void kernel(fpga_uint<7> x) { }").unwrap();
        let specs = kernel_specs(&p, "kernel").unwrap();
        assert_eq!(specs[0].int_range(), (0, 127));
        assert_eq!(specs[0].clamp_int(500), 127);
        assert_eq!(specs[0].clamp_int(-2), 0);
    }

    #[test]
    fn accepts_checks_shape_and_range() {
        let spec = ArgSpec::IntArray {
            bits: 8,
            signed: false,
            len: Some(3),
        };
        assert!(spec.accepts(&ArgValue::IntArray(vec![0, 255, 7])));
        assert!(
            !spec.accepts(&ArgValue::IntArray(vec![0, 256, 7])),
            "out of range"
        );
        assert!(
            !spec.accepts(&ArgValue::IntArray(vec![0, 1])),
            "wrong length"
        );
        assert!(!spec.accepts(&ArgValue::Int(1)), "wrong shape");
    }

    #[test]
    fn missing_kernel_is_an_error() {
        let p = minic::parse("void f() { }").unwrap();
        assert!(kernel_specs(&p, "kernel").is_err());
    }
}
