//! The coverage-guided fuzzing loop (paper Algorithm 1).
//!
//! Seeds come from kernel-entry captures of a host run when available
//! (`getKernelSeed`), otherwise from type-directed random generation. Each
//! mutant executes on the CPU interpreter; inputs that light up new branch
//! coverage join the corpus queue. Generation stops when the simulated clock
//! runs for [`FuzzConfig::idle_stop_min`] minutes without any new coverage
//! (the paper manually stops AFL 30 minutes after the last new path).
//!
//! Mutant execution is parallelized without perturbing determinism: each
//! round first computes a *safe lower bound* on how many children the
//! sequential loop is guaranteed to generate (coverage resets only ever
//! extend a round, never shorten it), draws exactly those children from the
//! RNG on the caller thread, executes them on a worker pool, and then merges
//! coverage, profile, and corpus admission strictly in draw order. The RNG
//! trajectory, the corpus, and every counter are therefore identical for
//! any [`FuzzConfig::threads`] value.

use crate::mutate::{mutate_case, random_value};
use crate::spec::{kernel_specs, ArgSpec};
use heterogen_trace::{Event, NullSink, TraceSink};
use minic::Program;
use minic_exec::{
    coverage, ArgValue, CoverageMap, ExecEngine, Machine, MachineConfig, Prepared, Profile,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// One kernel-level test input.
pub type TestCase = Vec<ArgValue>;

/// Raw observations from executing one input on a fresh machine, produced
/// on worker threads and merged into the campaign state in draw order.
struct RunResult {
    coverage: CoverageMap,
    profile: Profile,
    peak_cells: usize,
    trapped: bool,
}

/// Fuzzing configuration.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`FuzzConfig::builder`] (or start from [`FuzzConfig::default`] and
/// assign fields) so future knobs are not semver breaks.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct FuzzConfig {
    /// RNG seed (the whole process is deterministic per seed).
    pub rng_seed: u64,
    /// Simulated minutes billed per executed input.
    pub exec_cost_min: f64,
    /// Stop after this many simulated minutes without new coverage.
    pub idle_stop_min: f64,
    /// Hard cap on executed inputs (safety valve).
    pub max_execs: usize,
    /// Mutants derived from each corpus entry per round.
    pub mutants_per_seed: usize,
    /// Worker threads for mutant execution; `0` means "use available
    /// parallelism". Any value produces the same corpus, counters, and
    /// profile — only wall-clock time changes.
    pub threads: usize,
    /// Execution engine for mutant runs. Both engines produce identical
    /// corpora, coverage, and profiles; only wall-clock time changes.
    pub engine: ExecEngine,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            rng_seed: 0xC0FFEE,
            exec_cost_min: 0.012,
            idle_stop_min: 30.0,
            max_execs: 20_000,
            mutants_per_seed: 16,
            threads: 0,
            engine: ExecEngine::default(),
        }
    }
}

impl FuzzConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> FuzzConfigBuilder {
        FuzzConfigBuilder {
            cfg: FuzzConfig::default(),
        }
    }

    /// Starts a builder from this configuration.
    pub fn to_builder(self) -> FuzzConfigBuilder {
        FuzzConfigBuilder { cfg: self }
    }
}

/// Builder for [`FuzzConfig`].
///
/// ```
/// use testgen::FuzzConfig;
///
/// let cfg = FuzzConfig::builder()
///     .with_idle_stop_min(0.5)
///     .with_max_execs(300)
///     .build();
/// assert_eq!(cfg.max_execs, 300);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfigBuilder {
    cfg: FuzzConfig,
}

impl FuzzConfigBuilder {
    /// Sets the RNG seed.
    pub fn with_rng_seed(mut self, v: u64) -> Self {
        self.cfg.rng_seed = v;
        self
    }

    /// Sets the simulated minutes billed per executed input.
    pub fn with_exec_cost_min(mut self, v: f64) -> Self {
        self.cfg.exec_cost_min = v;
        self
    }

    /// Sets the idle-stop threshold (simulated minutes without coverage).
    pub fn with_idle_stop_min(mut self, v: f64) -> Self {
        self.cfg.idle_stop_min = v;
        self
    }

    /// Sets the hard cap on executed inputs.
    pub fn with_max_execs(mut self, v: usize) -> Self {
        self.cfg.max_execs = v;
        self
    }

    /// Sets the number of mutants derived from each corpus entry per round.
    pub fn with_mutants_per_seed(mut self, v: usize) -> Self {
        self.cfg.mutants_per_seed = v;
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, v: usize) -> Self {
        self.cfg.threads = v;
        self
    }

    /// Sets the execution engine for mutant runs.
    pub fn with_engine(mut self, v: ExecEngine) -> Self {
        self.cfg.engine = v;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> FuzzConfig {
        self.cfg
    }
}

/// The result of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Coverage-increasing inputs (the corpus / AFL queue). This is the
    /// test suite used for differential testing.
    pub corpus: Vec<TestCase>,
    /// Total inputs executed.
    pub executed: usize,
    /// Simulated fuzzing time in minutes (includes the idle tail).
    pub sim_minutes: f64,
    /// Final branch coverage in `[0, 1]` against the program.
    pub coverage: f64,
    /// Accumulated value profile of all executions (feeds bitwidth
    /// finitization).
    pub profile: Profile,
    /// Peak heap cells observed (feeds array finitization).
    pub peak_heap_cells: usize,
    /// Minimized trapping inputs (at most [`MAX_FAILING`]), in discovery
    /// order. Minimization runs after the campaign on the same prepared
    /// program and is deterministic; its executions are not billed to
    /// [`FuzzReport::executed`] or [`FuzzReport::sim_minutes`].
    pub failing: Vec<TestCase>,
}

/// Cap on trapping inputs captured (and minimized) per campaign.
pub const MAX_FAILING: usize = 8;

/// Captures seed inputs by running a host function and snapshotting the
/// kernel's entry arguments (paper Alg. 1 `getKernelSeed`).
///
/// Returns an empty vector when the host is missing or never calls the
/// kernel.
pub fn kernel_seeds_from_host(
    p: &Program,
    host: &str,
    kernel: &str,
    host_args: Vec<minic_exec::Value>,
) -> Vec<TestCase> {
    let Ok(mut m) = Machine::new(p, MachineConfig::cpu()) else {
        return Vec::new();
    };
    m.capture_args_of(kernel);
    let _ = m.run_function(host, host_args);
    m.captured
}

/// Runs the fuzzing campaign of Algorithm 1.
///
/// # Errors
///
/// Fails when the kernel signature is not fuzzable.
pub fn fuzz(
    p: &Program,
    kernel: &str,
    seeds: Vec<TestCase>,
    config: &FuzzConfig,
) -> Result<FuzzReport, String> {
    fuzz_traced(p, kernel, seeds, config, &NullSink)
}

/// Like [`fuzz`], emitting one [`Event::FuzzRoundEnd`] per completed round
/// into `sink`.
///
/// Events are emitted from the caller thread only, after each round's
/// results are merged in draw order, so the event stream is bit-identical
/// for any [`FuzzConfig::threads`] value.
///
/// # Errors
///
/// Fails when the kernel signature is not fuzzable.
pub fn fuzz_traced<S: TraceSink + ?Sized>(
    p: &Program,
    kernel: &str,
    seeds: Vec<TestCase>,
    config: &FuzzConfig,
    sink: &S,
) -> Result<FuzzReport, String> {
    let specs = kernel_specs(p, kernel)?;
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);

    let mut queue: VecDeque<TestCase> = VecDeque::new();
    let mut corpus: Vec<TestCase> = Vec::new();
    let mut global_cov = CoverageMap::new();
    let mut profile = Profile::new();
    let mut peak_heap = 0usize;
    let mut executed = 0usize;
    let mut sim_minutes = 0.0f64;
    let mut since_new_cov = 0.0f64;

    // Valid provided seeds first, then one random type-directed seed.
    for s in seeds {
        if s.len() == specs.len() && specs.iter().zip(&s).all(|(sp, v)| sp.accepts(v)) {
            queue.push_back(s);
        }
    }
    queue.push_back(
        specs
            .iter()
            .map(|sp| random_value(sp, &mut rng))
            .collect::<Vec<_>>(),
    );

    // Worker-side execution: runs a case on a fresh per-run interpreter
    // (the program is lowered once, up front) and returns its raw
    // observations without touching any campaign state.
    let prepared = Prepared::new(config.engine, p);
    let exec_case = |case: &TestCase| -> Option<RunResult> {
        let mut m = prepared.runner(MachineConfig::cpu()).ok()?;
        let outcome = m.run_kernel(kernel, case);
        Some(RunResult {
            coverage: m.coverage(),
            profile: m.profile(),
            peak_cells: m.peak_heap_cells(),
            trapped: outcome.trapped,
        })
    };
    // Caller-side admission: merges one run's observations in draw order.
    // Trapping inputs still contribute coverage, but we do not keep
    // inputs that trap (they cannot serve as differential oracles).
    let mut admit = |run: Option<RunResult>| -> bool {
        let Some(r) = run else {
            return false;
        };
        profile.merge(&r.profile);
        peak_heap = peak_heap.max(r.peak_cells);
        let new = global_cov.merge(&r.coverage) > 0;
        new && !r.trapped
    };

    // Seed round: execute everything in the queue once.
    let mut failing: Vec<TestCase> = Vec::new();
    let initial: Vec<TestCase> = queue.drain(..).collect();
    let runs = parallel::parallel_map(config.threads, &initial, |_, c| exec_case(c));
    let mut round: u64 = 0;
    let mut corpus_at_round_start = 0usize;
    for (case, run) in initial.into_iter().zip(runs) {
        executed += 1;
        sim_minutes += config.exec_cost_min;
        if run.as_ref().is_some_and(|r| r.trapped) && failing.len() < MAX_FAILING {
            failing.push(case.clone());
        }
        if admit(run) {
            since_new_cov = 0.0;
            corpus.push(case.clone());
            queue.push_back(case);
        } else if corpus.is_empty() {
            // Always keep at least one valid seed so mutation has a parent.
            corpus.push(case.clone());
            queue.push_back(case);
        }
    }
    if sink.enabled() {
        sink.emit(&Event::FuzzRoundEnd {
            round,
            executed: executed as u64,
            corpus: corpus.len() as u64,
            new_coverage: corpus.len() > corpus_at_round_start,
            at_min: sim_minutes,
        });
    }

    // Havoc rounds.
    while executed < config.max_execs && since_new_cov < config.idle_stop_min {
        round += 1;
        corpus_at_round_start = corpus.len();
        let parent = match queue.pop_front() {
            Some(c) => c,
            None => specs.iter().map(|sp| random_value(sp, &mut rng)).collect(),
        };
        let mut remaining = config.mutants_per_seed;
        while remaining > 0 {
            // Children the sequential loop certainly generates from here:
            // walk the stop condition forward assuming no coverage reset
            // (a reset can only lengthen a round, so this is a lower
            // bound, and within it the stop condition can never fire).
            let mut batch = 0usize;
            {
                let (mut e, mut s) = (executed, since_new_cov);
                for _ in 0..remaining {
                    if e >= config.max_execs || s >= config.idle_stop_min {
                        break;
                    }
                    batch += 1;
                    e += 1;
                    s += config.exec_cost_min;
                }
            }
            if batch == 0 {
                break;
            }
            let children: Vec<TestCase> = (0..batch)
                .map(|_| mutate_case(&specs, &parent, &mut rng))
                .collect();
            let runs = parallel::parallel_map(config.threads, &children, |_, c| exec_case(c));
            for (child, run) in children.into_iter().zip(runs) {
                executed += 1;
                sim_minutes += config.exec_cost_min;
                since_new_cov += config.exec_cost_min;
                if run.as_ref().is_some_and(|r| r.trapped) && failing.len() < MAX_FAILING {
                    failing.push(child.clone());
                }
                if admit(run) {
                    since_new_cov = 0.0;
                    corpus.push(child.clone());
                    queue.push_back(child);
                }
            }
            remaining -= batch;
        }
        // Re-enqueue the parent for future rounds (AFL-style cycling).
        queue.push_back(parent);
        if sink.enabled() {
            sink.emit(&Event::FuzzRoundEnd {
                round,
                executed: executed as u64,
                corpus: corpus.len() as u64,
                new_coverage: corpus.len() > corpus_at_round_start,
                at_min: sim_minutes,
            });
        }
    }
    // The idle tail counts toward the reported wall-clock (the paper stops
    // AFL 30 minutes after the last new path).
    sim_minutes += (config.idle_stop_min - since_new_cov).max(0.0);

    Ok(FuzzReport {
        coverage: coverage::coverage_ratio(&global_cov, p),
        corpus,
        executed,
        sim_minutes,
        profile,
        peak_heap_cells: peak_heap,
        failing: minimize_failing(&prepared, kernel, failing),
    })
}

/// Deterministically shrinks each trapping input while it keeps trapping:
/// scalar components step toward zero, array elements are halved in place
/// (lengths are preserved — the kernel signature fixes them). Bounded by a
/// fixed per-case attempt budget; duplicates after minimization collapse.
fn minimize_failing(prepared: &Prepared, kernel: &str, raw: Vec<TestCase>) -> Vec<TestCase> {
    let traps = |case: &TestCase| -> bool {
        prepared
            .runner(MachineConfig::cpu())
            .map(|mut m| m.run_kernel(kernel, case).trapped)
            .unwrap_or(false)
    };
    let mut out: Vec<TestCase> = Vec::new();
    for case in raw {
        let mut best = case;
        let mut budget = 64usize;
        let mut progress = true;
        while progress && budget > 0 {
            progress = false;
            for i in 0..best.len() {
                for shrunk in shrink_arg(&best[i]) {
                    if budget == 0 {
                        break;
                    }
                    budget -= 1;
                    if shrunk == best[i] {
                        continue;
                    }
                    let mut cand = best.clone();
                    cand[i] = shrunk;
                    if traps(&cand) {
                        best = cand;
                        progress = true;
                        break;
                    }
                }
            }
        }
        if !out.contains(&best) {
            out.push(best);
        }
    }
    out
}

/// Candidate simplifications of one argument, most aggressive first.
fn shrink_arg(a: &ArgValue) -> Vec<ArgValue> {
    match a {
        ArgValue::Int(0) => Vec::new(),
        ArgValue::Int(v) => vec![ArgValue::Int(0), ArgValue::Int(v / 2)],
        ArgValue::Float(f) if *f == 0.0 => Vec::new(),
        ArgValue::Float(f) => vec![ArgValue::Float(0.0), ArgValue::Float(f / 2.0)],
        ArgValue::IntArray(xs) if xs.iter().all(|&x| x == 0) => Vec::new(),
        ArgValue::IntArray(xs) => vec![
            ArgValue::IntArray(vec![0; xs.len()]),
            ArgValue::IntArray(xs.iter().map(|&x| x / 2).collect()),
        ],
        ArgValue::FloatArray(xs) if xs.iter().all(|&x| x == 0.0) => Vec::new(),
        ArgValue::FloatArray(xs) => vec![
            ArgValue::FloatArray(vec![0.0; xs.len()]),
            ArgValue::FloatArray(xs.iter().map(|&x| x / 2.0).collect()),
        ],
        ArgValue::IntStream(xs) if xs.iter().all(|&x| x == 0) => Vec::new(),
        ArgValue::IntStream(xs) => vec![
            ArgValue::IntStream(vec![0; xs.len()]),
            ArgValue::IntStream(xs.iter().map(|&x| x / 2).collect()),
        ],
    }
}

/// Convenience: specs for a kernel (re-exported for callers that need to
/// synthesize inputs directly).
pub fn specs_of(p: &Program, kernel: &str) -> Result<Vec<ArgSpec>, String> {
    kernel_specs(p, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_full_coverage_on_branchy_kernel() {
        let p = minic::parse(
            r#"
            int kernel(int x) {
                if (x > 100) { return 1; }
                if (x < -100) { return 2; }
                if (x % 2 == 0) { return 3; }
                return 4;
            }
        "#,
        )
        .expect("test kernel source is valid mini-C");
        let cfg = FuzzConfig {
            idle_stop_min: 3.0,
            max_execs: 4000,
            ..Default::default()
        };
        let r = fuzz(&p, "kernel", vec![], &cfg).expect("kernel signature is fuzzable");
        assert!(r.coverage >= 0.99, "coverage = {}", r.coverage);
        assert!(r.corpus.len() >= 3);
        assert!(r.executed > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = minic::parse("int kernel(int x) { if (x > 0) { return 1; } return 0; }")
            .expect("test kernel source is valid mini-C");
        let cfg = FuzzConfig {
            idle_stop_min: 0.5,
            max_execs: 500,
            ..Default::default()
        };
        let a = fuzz(&p, "kernel", vec![], &cfg).expect("kernel signature is fuzzable");
        let b = fuzz(&p, "kernel", vec![], &cfg).expect("kernel signature is fuzzable");
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn profile_accumulates_ranges() {
        let p = minic::parse(
            "int kernel(int x) { int r = 0; if (x > 5) { r = 83; } else { r = 2; } return r; }",
        )
        .expect("test kernel source is valid mini-C");
        let cfg = FuzzConfig {
            idle_stop_min: 1.0,
            max_execs: 1000,
            ..Default::default()
        };
        let rep = fuzz(&p, "kernel", vec![], &cfg).expect("kernel signature is fuzzable");
        let range = rep
            .profile
            .range_of("kernel", "r")
            .expect("every run assigns r, so its range is profiled");
        assert_eq!(range.max, 83);
    }

    #[test]
    fn host_capture_produces_seeds() {
        let p = minic::parse(
            r#"
            int kernel(int a[4]) { return a[0] + a[3]; }
            int main_host() {
                int buf[4];
                for (int i = 0; i < 4; i++) { buf[i] = i * 10; }
                return kernel(buf);
            }
        "#,
        )
        .expect("test kernel source is valid mini-C");
        let seeds = kernel_seeds_from_host(&p, "main_host", "kernel", vec![]);
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0][0], ArgValue::IntArray(vec![0, 10, 20, 30]));
    }

    #[test]
    fn seeded_fuzzing_accepts_valid_seeds_only() {
        let p = minic::parse("int kernel(int a[4]) { return a[0]; }")
            .expect("test kernel source is valid mini-C");
        let cfg = FuzzConfig {
            idle_stop_min: 0.2,
            max_execs: 100,
            ..Default::default()
        };
        let good = vec![ArgValue::IntArray(vec![1, 2, 3, 4])];
        let bad = vec![ArgValue::IntArray(vec![1])]; // wrong length
        let r = fuzz(&p, "kernel", vec![good, bad], &cfg).expect("kernel signature is fuzzable");
        assert!(r.corpus.iter().all(|c| match &c[0] {
            ArgValue::IntArray(v) => v.len() == 4,
            _ => false,
        }));
    }

    #[test]
    fn idle_tail_counts_in_reported_time() {
        let p = minic::parse("int kernel(int x) { return x; }")
            .expect("test kernel source is valid mini-C");
        let cfg = FuzzConfig {
            idle_stop_min: 5.0,
            max_execs: 200,
            ..Default::default()
        };
        let r = fuzz(&p, "kernel", vec![], &cfg).expect("kernel signature is fuzzable");
        assert!(r.sim_minutes >= 5.0);
    }
}
