//! The FPGA behavioural simulator.
//!
//! Runs a (synthesizable) kernel on the interpreter in FPGA mode — wrapping
//! array indices, masking integers to declared bit widths, quantizing custom
//! floats — and attaches a scheduled latency estimate. Together with the CPU
//! side this is the engine of HeteroGen's differential testing.

use crate::errors::ToolchainError;
use crate::schedule::{estimate_latency, FpgaEstimate, ScheduleModel};
use heterogen_faults::{Fault, FaultInjector, FaultSite};
use minic::Program;
use minic_exec::{ArgValue, ExecEngine, ExecError, MachineConfig, Outcome, Prepared, Trap};

/// Result of simulating one test input on the FPGA side.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Observable behaviour (return value, arrays, streams).
    pub outcome: Outcome,
    /// Scheduled latency estimate.
    pub estimate: FpgaEstimate,
}

/// FPGA simulator for one program.
///
/// Construction performs the one-time bytecode lowering (shared through the
/// process-wide compile cache), so each simulated test only pays for a cheap
/// per-run interpreter.
#[derive(Debug)]
pub struct FpgaSimulator<'p> {
    program: &'p Program,
    prepared: Prepared<'p>,
    model: ScheduleModel,
    kernel: String,
}

impl<'p> FpgaSimulator<'p> {
    /// Creates a simulator for the program's top function, using the default
    /// execution engine.
    ///
    /// # Errors
    ///
    /// Fails when the program has no resolvable top function.
    pub fn new(program: &'p Program) -> Result<FpgaSimulator<'p>, ExecError> {
        let kernel = program
            .top_function_name()
            .ok_or_else(|| ExecError::setup("no top function in design"))?
            .to_string();
        Ok(FpgaSimulator {
            program,
            prepared: Prepared::new(ExecEngine::default(), program),
            model: ScheduleModel::default(),
            kernel,
        })
    }

    /// Overrides the schedule model.
    pub fn with_model(mut self, model: ScheduleModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the execution engine (both engines are observably
    /// identical; `TreeWalk` is the reference for differential testing).
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.prepared = Prepared::new(engine, self.program);
        self
    }

    /// The kernel (top function) name being simulated.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Simulates one test input.
    pub fn run(&self, args: &[ArgValue]) -> SimResult {
        self.run_with_config(args, MachineConfig::fpga())
    }

    /// Simulates one test input through a fault injector, as the resilient
    /// repair loop does.
    ///
    /// `key` identifies the invocation (candidate fingerprint mixed with the
    /// test index) and `attempt` is the zero-based retry count. A fuel-spike
    /// fault reruns the test under a slashed fuel allowance: if the kernel
    /// still finishes, the result is identical to the unspiked run (fuel only
    /// bounds, never alters, deterministic execution); if the allowance is
    /// exhausted the invocation is classified transient so the caller retries
    /// it unspiked. With [`heterogen_faults::NoFaults`] this compiles down to
    /// a plain [`FpgaSimulator::run`] call.
    ///
    /// # Errors
    ///
    /// Returns a [`ToolchainError`] when the injector fails this invocation;
    /// a poison fault panics instead (caught at the caller's isolation
    /// boundary).
    pub fn run_resilient<I>(
        &self,
        args: &[ArgValue],
        injector: &I,
        key: u64,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError>
    where
        I: FaultInjector + ?Sized,
    {
        if !injector.enabled() {
            return Ok(self.run(args));
        }
        match injector.fault(FaultSite::HlsSim, key, attempt) {
            Some(Fault::Poison) => heterogen_faults::poison(FaultSite::HlsSim, key),
            Some(Fault::Permanent) => Err(ToolchainError::permanent(
                "hls_sim",
                "co-simulation backend rejected the invocation",
            )),
            Some(Fault::Transient) => Err(ToolchainError::transient(
                "hls_sim",
                attempt,
                "co-simulation crashed; the invocation may be retried",
            )),
            Some(Fault::FuelSpike { factor }) => self.run_spiked(args, factor, attempt),
            None => Ok(self.run(args)),
        }
    }

    /// Simulates one test input under a fuel allowance slashed by `factor`,
    /// as an injected fuel-spike fault does. If the kernel still finishes,
    /// the result is identical to the unspiked run (fuel only bounds, never
    /// alters, deterministic execution); if the allowance is exhausted the
    /// invocation is classified transient so the caller retries it unspiked.
    ///
    /// # Errors
    ///
    /// Returns a transient [`ToolchainError`] at `hls_sim` when the slashed
    /// fuel allowance runs out before the kernel completes.
    pub fn run_spiked(
        &self,
        args: &[ArgValue],
        factor: u32,
        attempt: u32,
    ) -> Result<SimResult, ToolchainError> {
        let mut config = MachineConfig::fpga();
        config.fuel = (config.fuel / u64::from(factor.max(1))).max(1);
        let r = self.run_with_config(args, config);
        let fuel_exhausted = ExecError::trap(Trap::FuelExhausted).to_string();
        if r.outcome.trapped && r.outcome.trap_reason.as_deref() == Some(&fuel_exhausted) {
            Err(ToolchainError::transient(
                "hls_sim",
                attempt,
                "fuel spike exhausted the simulation budget",
            ))
        } else {
            Ok(r)
        }
    }

    fn run_with_config(&self, args: &[ArgValue], config: MachineConfig) -> SimResult {
        let mut runner = match self.prepared.runner(config) {
            Ok(r) => r,
            Err(e) => {
                return SimResult {
                    outcome: Outcome {
                        trapped: true,
                        trap_reason: Some(e.to_string()),
                        ..Default::default()
                    },
                    estimate: FpgaEstimate {
                        cycles: 0.0,
                        latency_ms: 0.0,
                        effective_ops: 0.0,
                    },
                }
            }
        };
        let outcome = runner.run_kernel(&self.kernel, args);
        let estimate = estimate_latency(
            &self.model,
            self.program,
            runner.ops(),
            &runner.loop_stats(),
            self.program.config.clock_mhz,
        );
        SimResult { outcome, estimate }
    }

    /// Simulates a batch of inputs and returns the mean latency (ms) and
    /// the per-test results.
    pub fn run_all(&self, tests: &[Vec<ArgValue>]) -> (f64, Vec<SimResult>) {
        let results: Vec<SimResult> = tests.iter().map(|t| self.run(t)).collect();
        let mean = if results.is_empty() {
            0.0
        } else {
            results.iter().map(|r| r.estimate.latency_ms).sum::<f64>() / results.len() as f64
        };
        (mean, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulates_kernel_behaviour() {
        let p = minic::parse(
            "void kernel(int a[4]) { for (int i = 0; i < 4; i++) { a[i] = a[i] + 10; } }",
        )
        .unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let r = sim.run(&[ArgValue::IntArray(vec![1, 2, 3, 4])]);
        assert!(!r.outcome.trapped);
        assert_eq!(
            r.outcome.arrays[0]
                .iter()
                .map(|s| match s {
                    minic_exec::ScalarOut::Int(v) => *v,
                    _ => 0,
                })
                .collect::<Vec<_>>(),
            vec![11, 12, 13, 14]
        );
        assert!(r.estimate.latency_ms > 0.0);
    }

    #[test]
    fn fpga_mode_wraps_undersized_arrays() {
        // Static stack of 2 silently wraps when 3 values are pushed — the
        // CPU reference would keep all three. This is the §6.2 divergence.
        let p = minic::parse(
            r#"
            void kernel(int out[4], int n) {
                int stack[2];
                int sp = 0;
                for (int i = 0; i < n; i++) { stack[sp] = i + 1; sp = sp + 1; }
                for (int i = 0; i < n; i++) { out[i] = stack[i]; }
            }
        "#,
        )
        .unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let r = sim.run(&[ArgValue::IntArray(vec![0, 0, 0, 0]), ArgValue::Int(3)]);
        assert!(!r.outcome.trapped);
        // stack[2] wrapped to stack[0]: out = [3, 2, 3(wrap), 0]
        let got: Vec<i128> = r.outcome.arrays[0]
            .iter()
            .map(|s| match s {
                minic_exec::ScalarOut::Int(v) => *v,
                _ => 0,
            })
            .collect();
        assert_eq!(got[0], 3, "first slot overwritten by wrap");
    }

    #[test]
    fn run_all_averages_latency() {
        let p = minic::parse("int kernel(int x) { return x * 2; }").unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let tests = vec![vec![ArgValue::Int(1)], vec![ArgValue::Int(2)]];
        let (mean, results) = sim.run_all(&tests);
        assert_eq!(results.len(), 2);
        assert!(mean > 0.0);
    }

    #[test]
    fn missing_top_is_a_setup_error() {
        let p = minic::parse("void helper(int x) { }").unwrap();
        assert!(FpgaSimulator::new(&p).is_err());
    }

    #[test]
    fn run_resilient_with_no_faults_matches_run() {
        let p = minic::parse("int kernel(int x) { return x * 2; }").unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let args = vec![ArgValue::Int(21)];
        let plain = sim.run(&args);
        let resilient = sim
            .run_resilient(&args, &heterogen_faults::NoFaults, 7, 0)
            .unwrap();
        assert_eq!(plain, resilient);
    }

    #[test]
    fn survivable_fuel_spike_is_transparent() {
        let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let args = vec![ArgValue::Int(5)];
        // Rate 1.0 fires a fault on every draw; make it a mild spike that a
        // one-expression kernel survives.
        let plan = heterogen_faults::FaultPlan::builder(3)
            .with_fuel_spike_rate(1.0)
            .with_spike_factor(4)
            .build();
        let spiked = sim.run_resilient(&args, &plan, 11, 0).unwrap();
        assert_eq!(spiked, sim.run(&args));
    }

    #[test]
    fn lethal_fuel_spike_is_transient() {
        let p = minic::parse(
            "int kernel(int n) { int s = 0; for (int i = 0; i < 100000; i++) { s = s + i; } return s + n; }",
        )
        .unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let args = vec![ArgValue::Int(1)];
        let plan = heterogen_faults::FaultPlan::builder(3)
            .with_fuel_spike_rate(1.0)
            .with_spike_factor(1_000_000)
            .build();
        let err = sim.run_resilient(&args, &plan, 11, 0).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(err.site(), "hls_sim");
        // The unspiked rerun (next attempt: the plan only spikes attempt 0)
        // completes normally.
        let retried = sim.run_resilient(&args, &plan, 11, 1).unwrap();
        assert!(!retried.outcome.trapped);
    }
}
