//! The FPGA behavioural simulator.
//!
//! Runs a (synthesizable) kernel on the interpreter in FPGA mode — wrapping
//! array indices, masking integers to declared bit widths, quantizing custom
//! floats — and attaches a scheduled latency estimate. Together with the CPU
//! side this is the engine of HeteroGen's differential testing.

use crate::schedule::{estimate_latency, FpgaEstimate, ScheduleModel};
use minic::Program;
use minic_exec::{ArgValue, ExecError, Machine, MachineConfig, Outcome};

/// Result of simulating one test input on the FPGA side.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Observable behaviour (return value, arrays, streams).
    pub outcome: Outcome,
    /// Scheduled latency estimate.
    pub estimate: FpgaEstimate,
}

/// FPGA simulator for one program.
#[derive(Debug)]
pub struct FpgaSimulator<'p> {
    program: &'p Program,
    model: ScheduleModel,
    kernel: String,
}

impl<'p> FpgaSimulator<'p> {
    /// Creates a simulator for the program's top function.
    ///
    /// # Errors
    ///
    /// Fails when the program has no resolvable top function.
    pub fn new(program: &'p Program) -> Result<FpgaSimulator<'p>, ExecError> {
        let kernel = program
            .top_function_name()
            .ok_or_else(|| ExecError::setup("no top function in design"))?
            .to_string();
        Ok(FpgaSimulator {
            program,
            model: ScheduleModel::default(),
            kernel,
        })
    }

    /// Overrides the schedule model.
    pub fn with_model(mut self, model: ScheduleModel) -> Self {
        self.model = model;
        self
    }

    /// The kernel (top function) name being simulated.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Simulates one test input.
    pub fn run(&self, args: &[ArgValue]) -> SimResult {
        let mut machine = match Machine::new(self.program, MachineConfig::fpga()) {
            Ok(m) => m,
            Err(e) => {
                return SimResult {
                    outcome: Outcome {
                        trapped: true,
                        trap_reason: Some(e.to_string()),
                        ..Default::default()
                    },
                    estimate: FpgaEstimate {
                        cycles: 0.0,
                        latency_ms: 0.0,
                        effective_ops: 0.0,
                    },
                }
            }
        };
        let outcome = machine.run_kernel(&self.kernel, args);
        let estimate = estimate_latency(
            &self.model,
            self.program,
            machine.ops(),
            &machine.loop_stats,
            self.program.config.clock_mhz,
        );
        SimResult { outcome, estimate }
    }

    /// Simulates a batch of inputs and returns the mean latency (ms) and
    /// the per-test results.
    pub fn run_all(&self, tests: &[Vec<ArgValue>]) -> (f64, Vec<SimResult>) {
        let results: Vec<SimResult> = tests.iter().map(|t| self.run(t)).collect();
        let mean = if results.is_empty() {
            0.0
        } else {
            results.iter().map(|r| r.estimate.latency_ms).sum::<f64>() / results.len() as f64
        };
        (mean, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulates_kernel_behaviour() {
        let p = minic::parse(
            "void kernel(int a[4]) { for (int i = 0; i < 4; i++) { a[i] = a[i] + 10; } }",
        )
        .unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let r = sim.run(&[ArgValue::IntArray(vec![1, 2, 3, 4])]);
        assert!(!r.outcome.trapped);
        assert_eq!(
            r.outcome.arrays[0]
                .iter()
                .map(|s| match s {
                    minic_exec::ScalarOut::Int(v) => *v,
                    _ => 0,
                })
                .collect::<Vec<_>>(),
            vec![11, 12, 13, 14]
        );
        assert!(r.estimate.latency_ms > 0.0);
    }

    #[test]
    fn fpga_mode_wraps_undersized_arrays() {
        // Static stack of 2 silently wraps when 3 values are pushed — the
        // CPU reference would keep all three. This is the §6.2 divergence.
        let p = minic::parse(
            r#"
            void kernel(int out[4], int n) {
                int stack[2];
                int sp = 0;
                for (int i = 0; i < n; i++) { stack[sp] = i + 1; sp = sp + 1; }
                for (int i = 0; i < n; i++) { out[i] = stack[i]; }
            }
        "#,
        )
        .unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let r = sim.run(&[ArgValue::IntArray(vec![0, 0, 0, 0]), ArgValue::Int(3)]);
        assert!(!r.outcome.trapped);
        // stack[2] wrapped to stack[0]: out = [3, 2, 3(wrap), 0]
        let got: Vec<i128> = r.outcome.arrays[0]
            .iter()
            .map(|s| match s {
                minic_exec::ScalarOut::Int(v) => *v,
                _ => 0,
            })
            .collect();
        assert_eq!(got[0], 3, "first slot overwritten by wrap");
    }

    #[test]
    fn run_all_averages_latency() {
        let p = minic::parse("int kernel(int x) { return x * 2; }").unwrap();
        let sim = FpgaSimulator::new(&p).unwrap();
        let tests = vec![vec![ArgValue::Int(1)], vec![ArgValue::Int(2)]];
        let (mean, results) = sim.run_all(&tests);
        assert_eq!(results.len(), 2);
        assert!(mean > 0.0);
    }

    #[test]
    fn missing_top_is_a_setup_error() {
        let p = minic::parse("void helper(int x) { }").unwrap();
        assert!(FpgaSimulator::new(&p).is_err());
    }
}
