//! The full synthesizability checker of the simulated HLS compiler.
//!
//! Walks a program and emits Vivado-style diagnostics for every construct the
//! paper's six error categories cover. This is the "expensive" check: the
//! repair loop only reaches it after the cheap [`style`](crate::style) pass,
//! and each invocation is billed by the [`cost`](crate::cost) model.

use crate::errors::{ErrorCategory, HlsDiagnostic, ToolchainError};
use heterogen_faults::{Fault, FaultInjector, FaultSite};
use minic::ast::*;
use minic::types::Type;
use minic::visit;
use std::collections::{BTreeMap, BTreeSet};

/// Runs the full synthesizability check.
///
/// Returns every diagnostic found (empty means the design is synthesizable).
///
/// # Examples
///
/// ```
/// let p = minic::parse("void kernel(int x) { int a[x]; }").unwrap();
/// let diags = hls_sim::check::check_program(&p);
/// assert!(!diags.is_empty());
/// ```
pub fn check_program(p: &Program) -> Vec<HlsDiagnostic> {
    let mut out = Vec::new();
    check_top_config(p, &mut out);
    let top = p.top_function_name().map(str::to_string);
    for f in p.functions() {
        let is_top = top.as_deref() == Some(f.name.as_str());
        check_function(p, f, is_top, &mut out);
    }
    for item in &p.items {
        match item {
            Item::Global(g) => check_global(p, g, &mut out),
            Item::Struct(s) => check_struct_def(p, s, &mut out),
            _ => {}
        }
    }
    check_struct_instantiation(p, &mut out);
    out
}

/// Whether a program passes the full check.
pub fn is_synthesizable(p: &Program) -> bool {
    check_program(p).is_empty()
}

/// Runs the full check through a fault injector, as the resilient repair
/// loop does.
///
/// `key` is the stable identity of the invocation (the candidate
/// fingerprint) and `attempt` the zero-based retry count; together they make
/// injected faults reproducible at any thread count. With
/// [`heterogen_faults::NoFaults`] this compiles down to a plain
/// [`check_program`] call.
///
/// # Errors
///
/// Returns a [`ToolchainError`] when the injector decides this invocation
/// fails; a poison fault panics instead (the caller's isolation boundary is
/// expected to catch it).
pub fn check_program_resilient<I>(
    p: &Program,
    injector: &I,
    key: u64,
    attempt: u32,
) -> Result<Vec<HlsDiagnostic>, ToolchainError>
where
    I: FaultInjector + ?Sized,
{
    if injector.enabled() {
        match injector.fault(FaultSite::HlsCheck, key, attempt) {
            Some(Fault::Poison) => heterogen_faults::poison(FaultSite::HlsCheck, key),
            Some(Fault::Permanent) => {
                return Err(ToolchainError::permanent(
                    "hls_check",
                    "synthesis front-end rejected the invocation",
                ));
            }
            Some(Fault::Transient) | Some(Fault::FuelSpike { .. }) => {
                return Err(ToolchainError::transient(
                    "hls_check",
                    attempt,
                    "synthesis front-end crashed; the invocation may be retried",
                ));
            }
            None => {}
        }
    }
    Ok(check_program(p))
}

fn check_top_config(p: &Program, out: &mut Vec<HlsDiagnostic>) {
    match p.top_function_name() {
        Some(name) => {
            if p.function(name).is_none() {
                out.push(
                    HlsDiagnostic::new(
                        "HLS 200-101",
                        format!("Cannot find the top function '{name}' in the design"),
                        ErrorCategory::TopFunction,
                    )
                    .on(name),
                );
            }
        }
        None => {
            out.push(HlsDiagnostic::new(
                "HLS 200-101",
                "Cannot find the top function in the design",
                ErrorCategory::TopFunction,
            ));
        }
    }
    let clk = p.config.clock_mhz;
    if !(50.0..=800.0).contains(&clk) {
        out.push(HlsDiagnostic::new(
            "HLS 200-102",
            format!(
                "Top function configuration invalid: clock {clk} MHz outside the supported range for device {}",
                p.config.device
            ),
            ErrorCategory::TopFunction,
        ));
    }
}

fn contains_long_double(t: &Type) -> bool {
    match t {
        Type::LongDouble => true,
        Type::Pointer(t) | Type::Array(t, _) | Type::Stream(t) => contains_long_double(t),
        _ => false,
    }
}

fn is_raw_pointer(t: &Type) -> bool {
    matches!(t, Type::Pointer(_))
}

fn unknown_extent(p: &Program, t: &Type) -> bool {
    match t {
        Type::Array(inner, size) => {
            minic::edit::resolve_array_size(p, size).is_none() || unknown_extent(p, inner)
        }
        _ => false,
    }
}

fn check_global(p: &Program, g: &VarDecl, out: &mut Vec<HlsDiagnostic>) {
    if contains_long_double(&g.ty) {
        out.push(unsupported_type_diag(&g.name, None));
    }
    if is_raw_pointer(&g.ty) {
        out.push(pointer_diag(&g.name, None));
    }
    if unknown_extent(p, &g.ty) {
        out.push(unknown_size_diag(&g.name, None));
    }
}

fn check_struct_def(p: &Program, s: &StructDef, out: &mut Vec<HlsDiagnostic>) {
    for f in &s.fields {
        if contains_long_double(&f.ty) {
            out.push(unsupported_type_diag(&f.name, None));
        }
        if is_raw_pointer(&f.ty) {
            out.push(
                HlsDiagnostic::new(
                    "SYNCHK 200-61",
                    format!(
                        "unsupported memory access on variable '{}' in struct '{}': pointer members are not synthesizable",
                        f.name, s.name
                    ),
                    ErrorCategory::UnsupportedDataTypes,
                )
                .on(f.name.clone())
                .in_function(s.name.clone())
                .at(s.id),
            );
        }
        if unknown_extent(p, &f.ty) {
            out.push(unknown_size_diag(&f.name, None));
        }
    }
}

fn unsupported_type_diag(symbol: &str, function: Option<&str>) -> HlsDiagnostic {
    let mut d = HlsDiagnostic::new(
        "SYNCHK 200-11",
        format!(
            "call of overloaded operator on '{symbol}' is ambiguous: type 'long double' is not synthesizable"
        ),
        ErrorCategory::UnsupportedDataTypes,
    )
    .on(symbol);
    if let Some(f) = function {
        d = d.in_function(f);
    }
    d
}

fn pointer_diag(symbol: &str, function: Option<&str>) -> HlsDiagnostic {
    let mut d = HlsDiagnostic::new(
        "SYNCHK 200-61",
        format!(
            "unsupported memory access on variable '{symbol}': pointer types are only permitted at the top-level hardware interface"
        ),
        ErrorCategory::UnsupportedDataTypes,
    )
    .on(symbol);
    if let Some(f) = function {
        d = d.in_function(f);
    }
    d
}

fn unknown_size_diag(symbol: &str, function: Option<&str>) -> HlsDiagnostic {
    let mut d = HlsDiagnostic::new(
        "SYNCHK 200-61",
        format!(
            "unsupported memory access on variable '{symbol}' which is (or contains) an array with unknown size at compile time"
        ),
        ErrorCategory::DynamicDataStructures,
    )
    .on(symbol);
    if let Some(f) = function {
        d = d.in_function(f);
    }
    d
}

fn check_function(p: &Program, f: &Function, is_top: bool, out: &mut Vec<HlsDiagnostic>) {
    // Recursion.
    if minic::edit::is_recursive(p, &f.name) {
        out.push(
            HlsDiagnostic::new(
                "XFORM 202-876",
                format!(
                    "Synthesizability check failed: recursive functions are not supported ('{}' calls itself)",
                    f.name
                ),
                ErrorCategory::DynamicDataStructures,
            )
            .on(f.name.clone())
            .in_function(f.name.clone())
            .at(f.id),
        );
    }
    // Parameter types.
    for par in &f.params {
        if contains_long_double(&par.ty) {
            out.push(unsupported_type_diag(&par.name, Some(&f.name)).at(f.id));
        }
        if is_raw_pointer(&par.ty) && !is_top {
            out.push(pointer_diag(&par.name, Some(&f.name)).at(f.id));
        }
        if unknown_extent(p, &par.ty) && !is_top {
            out.push(unknown_size_diag(&par.name, Some(&f.name)).at(f.id));
        }
    }
    if contains_long_double(&f.ret) {
        out.push(unsupported_type_diag(&f.name, Some(&f.name)).at(f.id));
    }
    if is_raw_pointer(&f.ret) && !is_top {
        out.push(pointer_diag(&f.name, Some(&f.name)).at(f.id));
    }

    let Some(body) = &f.body else { return };

    // Locals: long double, pointers, unknown-size arrays. malloc/free calls.
    let mut local_decl_issues = Vec::new();
    for s in &body.stmts {
        collect_stmt_issues(p, s, &f.name, &mut local_decl_issues);
    }
    out.extend(local_decl_issues);

    visit::visit_function_exprs(f, &mut |e| {
        if let ExprKind::Call(name, _) = &e.kind {
            if name == "malloc" || name == "free" {
                out.push(
                    HlsDiagnostic::new(
                        "SYNCHK 200-31",
                        format!(
                            "dynamic memory allocation/deallocation is not supported ('{name}' in '{}')",
                            f.name
                        ),
                        ErrorCategory::DynamicDataStructures,
                    )
                    .on(name.clone())
                    .in_function(f.name.clone())
                    .at(e.id),
                );
            }
        }
        if let ExprKind::Cast(t, _) = &e.kind {
            if contains_long_double(t) {
                out.push(unsupported_type_diag(&f.name, Some(&f.name)).at(e.id));
            }
        }
    });

    check_pragmas(p, f, out);
}

fn collect_stmt_issues(p: &Program, s: &Stmt, fname: &str, out: &mut Vec<HlsDiagnostic>) {
    match &s.kind {
        StmtKind::Decl(d) => {
            if contains_long_double(&d.ty) {
                out.push(unsupported_type_diag(&d.name, Some(fname)).at(s.id));
            }
            if is_raw_pointer(&d.ty) {
                out.push(pointer_diag(&d.name, Some(fname)).at(s.id));
            }
            if unknown_extent(p, &d.ty) {
                out.push(unknown_size_diag(&d.name, Some(fname)).at(s.id));
            }
        }
        StmtKind::If(_, t, e) => {
            for st in &t.stmts {
                collect_stmt_issues(p, st, fname, out);
            }
            if let Some(e) = e {
                for st in &e.stmts {
                    collect_stmt_issues(p, st, fname, out);
                }
            }
        }
        StmtKind::While(_, b) | StmtKind::DoWhile(b, _) => {
            for st in &b.stmts {
                collect_stmt_issues(p, st, fname, out);
            }
        }
        StmtKind::For(init, _, _, b) => {
            if let Some(i) = init {
                collect_stmt_issues(p, i, fname, out);
            }
            for st in &b.stmts {
                collect_stmt_issues(p, st, fname, out);
            }
        }
        StmtKind::Block(b) => {
            for st in &b.stmts {
                collect_stmt_issues(p, st, fname, out);
            }
        }
        _ => {}
    }
}

/// A loop in a function body together with its directly attached pragmas
/// (the pragma statements appearing first in the loop body) and trip bound.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The loop statement id.
    pub id: NodeId,
    /// Pragmas at the head of the loop body.
    pub pragmas: Vec<PragmaKind>,
    /// Static trip count, when the loop is `for (i = 0; i < K; i++)`-shaped.
    pub static_trip: Option<u64>,
    /// Arrays indexed inside the loop body.
    pub arrays_accessed: Vec<String>,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
}

/// Collects every loop in a function with its pragma context.
pub fn collect_loops(p: &Program, f: &Function) -> Vec<LoopInfo> {
    let mut out = Vec::new();
    if let Some(body) = &f.body {
        for s in &body.stmts {
            collect_loops_stmt(p, s, 0, &mut out);
        }
    }
    out
}

fn collect_loops_stmt(p: &Program, s: &Stmt, depth: usize, out: &mut Vec<LoopInfo>) {
    let (body, static_trip): (&Block, Option<u64>) = match &s.kind {
        StmtKind::While(_, b) => (b, None),
        StmtKind::DoWhile(b, _) => (b, None),
        StmtKind::For(init, cond, _, b) => (b, static_trip_count(p, init, cond)),
        StmtKind::If(_, t, e) => {
            for st in &t.stmts {
                collect_loops_stmt(p, st, depth, out);
            }
            if let Some(e) = e {
                for st in &e.stmts {
                    collect_loops_stmt(p, st, depth, out);
                }
            }
            return;
        }
        StmtKind::Block(b) => {
            for st in &b.stmts {
                collect_loops_stmt(p, st, depth, out);
            }
            return;
        }
        _ => return,
    };
    let mut pragmas = Vec::new();
    for st in &body.stmts {
        if let StmtKind::Pragma(pr) = &st.kind {
            pragmas.push(pr.kind.clone());
        } else {
            break;
        }
    }
    let mut arrays = BTreeSet::new();
    for st in &body.stmts {
        visit::walk_stmt_exprs(st, &mut |e| {
            if let ExprKind::Index(base, _) = &e.kind {
                if let ExprKind::Ident(n) = &base.kind {
                    arrays.insert(n.clone());
                }
            }
        });
    }
    out.push(LoopInfo {
        id: s.id,
        pragmas,
        static_trip,
        arrays_accessed: arrays.into_iter().collect(),
        depth,
    });
    for st in &body.stmts {
        collect_loops_stmt(p, st, depth + 1, out);
    }
}

/// Extracts a static trip count from a canonical
/// `for (T i = 0; i < K; …)` header.
pub fn static_trip_count(
    p: &Program,
    init: &Option<Box<Stmt>>,
    cond: &Option<Expr>,
) -> Option<u64> {
    let start: i128 = match init.as_deref().map(|s| &s.kind) {
        Some(StmtKind::Decl(d)) => match d.init.as_ref().map(|e| &e.kind) {
            Some(ExprKind::IntLit(v, _)) => *v,
            _ => return None,
        },
        Some(StmtKind::Expr(e)) => match &e.kind {
            ExprKind::Assign(None, _, rhs) => match &rhs.kind {
                ExprKind::IntLit(v, _) => *v,
                _ => return None,
            },
            _ => return None,
        },
        _ => return None,
    };
    let cond = cond.as_ref()?;
    let ExprKind::Binary(op, _, rhs) = &cond.kind else {
        return None;
    };
    let bound: i128 = match &rhs.kind {
        ExprKind::IntLit(v, _) => *v,
        ExprKind::Ident(n) => p.define(n)?,
        _ => return None,
    };
    match op {
        BinOp::Lt => (bound - start).try_into().ok(),
        BinOp::Le => (bound - start + 1).try_into().ok(),
        _ => None,
    }
}

/// Partition factors declared for arrays anywhere in a function
/// (`u32::MAX` encodes `complete` partitioning). Used by the scheduler to
/// model memory-port limits.
pub fn partition_factors(f: &Function) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    let Some(body) = &f.body else { return out };
    for s in &body.stmts {
        visit::walk_stmt(s, &mut |s| {
            if let StmtKind::Pragma(pr) = &s.kind {
                if let PragmaKind::ArrayPartition {
                    var,
                    factor,
                    complete,
                    ..
                } = &pr.kind
                {
                    out.insert(var.clone(), if *complete { u32::MAX } else { *factor });
                }
            }
        });
    }
    out
}

fn check_pragmas(p: &Program, f: &Function, out: &mut Vec<HlsDiagnostic>) {
    let Some(body) = &f.body else { return };
    let has_dataflow = body
        .stmts
        .iter()
        .any(|s| matches!(&s.kind, StmtKind::Pragma(pr) if pr.kind == PragmaKind::Dataflow));

    // array_partition: factor must divide the array extent.
    let mut check_partition = |s: &Stmt| {
        if let StmtKind::Pragma(pr) = &s.kind {
            if let PragmaKind::ArrayPartition {
                var,
                factor,
                complete,
                ..
            } = &pr.kind
            {
                if *complete {
                    return;
                }
                if let Some(Type::Array(_, size)) =
                    &minic::edit::declared_type(p, Some(&f.name), var)
                {
                    if let Some(n) = minic::edit::resolve_array_size(p, size) {
                        if *factor == 0 || n % (*factor as u64) != 0 {
                            out.push(
                                HlsDiagnostic::new(
                                    "XFORM 202-711",
                                    format!(
                                        "Array '{var}' failed partition checking: factor {factor} does not divide array extent {n}"
                                    ),
                                    ErrorCategory::LoopParallelization,
                                )
                                .on(var.clone())
                                .in_function(f.name.clone())
                                .at(s.id),
                            );
                        }
                    }
                }
            }
        }
    };
    for s in &body.stmts {
        visit::walk_stmt(s, &mut check_partition);
    }

    // Unroll/dataflow interaction: a large unroll factor combined with a
    // dataflow region requires an explicit trip bound (paper post 721719:
    // the error appears only at factor >= 50 with a pre-existing dataflow
    // pragma; it is fixed by making the iteration count explicit).
    for l in collect_loops(p, f) {
        let unroll = l.pragmas.iter().find_map(|pk| match pk {
            PragmaKind::Unroll { factor } => Some(factor.unwrap_or(u32::MAX)),
            _ => None,
        });
        let has_tripcount = l
            .pragmas
            .iter()
            .any(|pk| matches!(pk, PragmaKind::LoopTripcount { .. }));
        if let Some(factor) = unroll {
            if has_dataflow && factor >= 32 && !has_tripcount && l.static_trip.is_none() {
                out.push(
                    HlsDiagnostic::new(
                        "HLS 200-70",
                        format!(
                            "Pre-synthesis failed: unroll factor {factor} inside a dataflow region requires a statically bounded loop (add an explicit tripcount)"
                        ),
                        ErrorCategory::LoopParallelization,
                    )
                    .in_function(f.name.clone())
                    .at(l.id),
                );
            }
        }
    }

    // Dataflow: the same array must not feed multiple simultaneous tasks.
    // A local buffer may legitimately appear in exactly two task calls
    // (single producer, single consumer); a third use — or a kernel
    // parameter consumed by two tasks (the paper's `my_func(data)` twice
    // case) — fails dataflow checking.
    if has_dataflow {
        let mut uses: BTreeMap<String, usize> = BTreeMap::new();
        for s in &body.stmts {
            if let StmtKind::Expr(e) = &s.kind {
                if let ExprKind::Call(_, args) = &e.kind {
                    for a in args {
                        if let ExprKind::Ident(n) = &a.kind {
                            if let Some(t) = minic::edit::declared_type(p, Some(&f.name), n) {
                                if t.is_array() || t.is_pointer() {
                                    *uses.entry(n.clone()).or_insert(0) += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        for (var, count) in uses {
            let is_param = f.params.iter().any(|q| q.name == var);
            let limit = if is_param { 2 } else { 3 };
            if count >= limit {
                out.push(
                    HlsDiagnostic::new(
                        "XFORM 202-711",
                        format!(
                            "Argument '{var}' failed dataflow checking: the same data is consumed by {count} simultaneous tasks"
                        ),
                        ErrorCategory::DataflowOptimization,
                    )
                    .on(var)
                    .in_function(f.name.clone()),
                );
            }
        }
    }
}

/// Struct instantiation rules: `S{…}` aggregates of method-bearing structs
/// need an explicit constructor, and a stream connecting two instances must
/// be `static`.
fn check_struct_instantiation(p: &Program, out: &mut Vec<HlsDiagnostic>) {
    for f in p.functions() {
        let Some(body) = &f.body else { continue };
        // Count struct-literal uses and which stream locals they mention.
        let mut stream_uses: BTreeMap<String, usize> = BTreeMap::new();
        let mut instantiated: BTreeSet<String> = BTreeSet::new();
        visit::visit_function_exprs(f, &mut |e| {
            if let ExprKind::StructLit(name, args) = &e.kind {
                instantiated.insert(name.clone());
                for a in args {
                    if let ExprKind::Ident(n) = &a.kind {
                        if let Some(Type::Stream(_)) =
                            minic::edit::declared_type(p, Some(&f.name), n)
                        {
                            *stream_uses.entry(n.clone()).or_insert(0) += 1;
                        }
                    }
                }
            }
        });
        for sname in &instantiated {
            let Some(def) = p.struct_def(sname) else {
                continue;
            };
            if !def.methods.is_empty() && def.ctor.is_none() {
                out.push(
                    HlsDiagnostic::new(
                        "SYNCHK 200-42",
                        format!(
                            "Argument 'this' has an unsynthesizable struct type '{sname}': no explicit constructor for hardware instantiation"
                        ),
                        ErrorCategory::StructAndUnion,
                    )
                    .on(sname.clone())
                    .in_function(f.name.clone())
                    .at(def.id),
                );
            }
        }
        if !instantiated.is_empty() {
            for (var, count) in stream_uses {
                if count >= 2 && !is_static_local(body, &var) {
                    out.push(
                        HlsDiagnostic::new(
                            "SYNCHK 200-96",
                            format!(
                                "Stream '{var}' connecting struct task instances must be static"
                            ),
                            ErrorCategory::StructAndUnion,
                        )
                        .on(var)
                        .in_function(f.name.clone()),
                    );
                }
            }
        }
    }
}

fn is_static_local(b: &Block, var: &str) -> bool {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl(d) if d.name == var => return d.is_static,
            StmtKind::Block(inner) if is_static_local(inner, var) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<HlsDiagnostic> {
        check_program(&minic::parse(src).unwrap())
    }

    fn has_category(ds: &[HlsDiagnostic], c: ErrorCategory) -> bool {
        ds.iter().any(|d| d.category == c)
    }

    #[test]
    fn clean_kernel_is_synthesizable() {
        let ds =
            diags("void kernel(int a[16]) { for (int i = 0; i < 16; i++) { a[i] = a[i] + 1; } }");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn recursion_reported() {
        let ds = diags("int kernel(int n) { if (n < 2) { return n; } return kernel(n - 1); }");
        assert!(has_category(&ds, ErrorCategory::DynamicDataStructures));
        assert!(ds.iter().any(|d| d.code == "XFORM 202-876"));
    }

    #[test]
    fn malloc_reported() {
        let ds = diags("void kernel(int n) { int* p = (int*)malloc(n); free(p); }");
        assert!(ds.iter().any(|d| d.code == "SYNCHK 200-31"));
    }

    #[test]
    fn long_double_reported() {
        let ds = diags("int kernel(int x) { long double y = x; return y; }");
        assert!(has_category(&ds, ErrorCategory::UnsupportedDataTypes));
        assert!(ds.iter().any(|d| d.message.contains("long double")));
    }

    #[test]
    fn pointer_local_reported_but_top_param_allowed() {
        let ds = diags("void kernel(float* out) { float x = out[0]; out[0] = x; }");
        assert!(ds.is_empty(), "top interface pointers allowed: {ds:?}");
        let ds =
            diags("void helper(float* p) { p[0] = 1.0; } void kernel(float a[4]) { helper(a); }");
        assert!(has_category(&ds, ErrorCategory::UnsupportedDataTypes));
    }

    #[test]
    fn unknown_size_array_reported() {
        let ds = diags("void kernel(int n) { int buf[n]; buf[0] = 1; }");
        assert!(has_category(&ds, ErrorCategory::DynamicDataStructures));
        assert!(ds.iter().any(|d| d.message.contains("unknown size")));
    }

    #[test]
    fn partition_factor_must_divide() {
        let ds = diags(
            r#"
            void kernel(int x) {
                int A[13];
            #pragma HLS array_partition variable=A factor=4 dim=1
                for (int i = 0; i < 13; i++) { A[i] = x; }
            }
        "#,
        );
        assert!(has_category(&ds, ErrorCategory::LoopParallelization));
        assert!(ds.iter().any(|d| d.code == "XFORM 202-711"));
    }

    #[test]
    fn partition_factor_dividing_is_clean() {
        let ds = diags(
            r#"
            void kernel(int x) {
                int A[12];
            #pragma HLS array_partition variable=A factor=4 dim=1
                for (int i = 0; i < 12; i++) { A[i] = x; }
            }
        "#,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn dataflow_same_array_to_two_tasks() {
        // The paper's case: the top's own input feeds two simultaneous
        // tasks (post 595161).
        let ds = diags(
            r#"
            void task(int d[8]) { d[0] = 1; }
            void kernel(int data[8]) {
            #pragma HLS dataflow
                task(data);
                task(data);
            }
        "#,
        );
        assert!(has_category(&ds, ErrorCategory::DataflowOptimization));
        // A local buffer with one producer and one consumer is canonical.
        let ok = diags(
            r#"
            void produce(int d[8]) { d[0] = 1; }
            void consume(int d[8], int o[8]) { o[0] = d[0]; }
            void kernel(int out[8]) {
            #pragma HLS dataflow
                int buf[8];
                produce(buf);
                consume(buf, out);
            }
        "#,
        );
        assert!(ok.is_empty(), "{ok:?}");
        // A third use fails.
        let bad = diags(
            r#"
            void produce(int d[8]) { d[0] = 1; }
            void consume(int d[8], int o[8]) { o[0] = d[0]; }
            void kernel(int o1[8], int o2[8]) {
            #pragma HLS dataflow
                int buf[8];
                produce(buf);
                consume(buf, o1);
                consume(buf, o2);
            }
        "#,
        );
        assert!(has_category(&bad, ErrorCategory::DataflowOptimization));
    }

    #[test]
    fn unroll_with_dataflow_needs_bound() {
        let ds = diags(
            r#"
            void kernel(int a[128], int n) {
            #pragma HLS dataflow
                for (int i = 0; i < n; i++) {
            #pragma HLS unroll factor=50
                    a[i] = a[i] + 1;
                }
            }
        "#,
        );
        assert!(ds.iter().any(|d| d.code == "HLS 200-70"), "{ds:?}");
        // With a tripcount pragma the error disappears.
        let ds2 = diags(
            r#"
            void kernel(int a[128], int n) {
            #pragma HLS dataflow
                for (int i = 0; i < n; i++) {
            #pragma HLS unroll factor=50
            #pragma HLS loop_tripcount min=1 max=128
                    a[i] = a[i] + 1;
                }
            }
        "#,
        );
        assert!(!ds2.iter().any(|d| d.code == "HLS 200-70"), "{ds2:?}");
    }

    #[test]
    fn struct_without_ctor_reported() {
        let ds = diags(
            r#"
            struct If2 {
                hls::stream<unsigned> &in;
                hls::stream<unsigned> &out;
                void do1() { out.write(in.read()); }
            };
            void kernel(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
            #pragma HLS dataflow
                hls::stream<unsigned> tmp;
                If2{in, tmp}.do1();
                If2{tmp, out}.do1();
            }
        "#,
        );
        assert!(has_category(&ds, ErrorCategory::StructAndUnion));
        assert!(ds
            .iter()
            .any(|d| d.message.contains("unsynthesizable struct")));
        // Non-static connecting stream also reported.
        assert!(ds.iter().any(|d| d.message.contains("must be static")));
    }

    #[test]
    fn struct_with_ctor_and_static_stream_is_clean() {
        let ds = diags(
            r#"
            struct If2 {
                hls::stream<unsigned> &in;
                hls::stream<unsigned> &out;
                If2(hls::stream<unsigned> &i, hls::stream<unsigned> &o) : in(i), out(o) {}
                void do1() { out.write(in.read()); }
            };
            void kernel(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
            #pragma HLS dataflow
                static hls::stream<unsigned> tmp;
                If2{in, tmp}.do1();
                If2{tmp, out}.do1();
            }
        "#,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn missing_top_reported() {
        let ds = diags("void helper(int x) { }");
        assert!(has_category(&ds, ErrorCategory::TopFunction));
    }

    #[test]
    fn misnamed_top_config_reported() {
        let ds = diags("#pragma HLS top name=main_top\nvoid kernel(int a[4]) { a[0] = 1; }");
        assert!(ds.iter().any(|d| d.message.contains("main_top")));
    }

    #[test]
    fn bad_clock_reported() {
        let ds = diags("#pragma HLS config clock=1200\nvoid kernel(int a[4]) { a[0] = 1; }");
        assert!(has_category(&ds, ErrorCategory::TopFunction));
    }

    #[test]
    fn static_trip_count_extraction() {
        let p = minic::parse(
            "#define N 8\nvoid kernel(int a[8]) { for (int i = 0; i < N; i++) { a[i] = 0; } for (int j = 2; j <= 5; j++) { a[j] = 1; } }",
        )
        .unwrap();
        let f = p.function("kernel").unwrap();
        let loops = collect_loops(&p, f);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].static_trip, Some(8));
        assert_eq!(loops[1].static_trip, Some(4));
        assert_eq!(loops[0].arrays_accessed, vec!["a".to_string()]);
    }

    #[test]
    fn resilient_check_with_no_faults_matches_plain_check() {
        let p = minic::parse("void kernel(int n) { int buf[n]; buf[0] = 1; }").unwrap();
        let plain = check_program(&p);
        let resilient = check_program_resilient(&p, &heterogen_faults::NoFaults, 42, 0).unwrap();
        assert_eq!(plain, resilient);
    }

    #[test]
    fn resilient_check_surfaces_injected_faults() {
        let p = minic::parse("void kernel(int a[4]) { a[0] = 1; }").unwrap();
        let plan = heterogen_faults::FaultPlan::builder(1)
            .with_transient_rate(1.0)
            .with_transient_len(1)
            .build();
        let err = check_program_resilient(&p, &plan, 5, 0).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(err.site(), "hls_check");
        // The transient run length is 1, so attempt 1 succeeds.
        assert!(check_program_resilient(&p, &plan, 5, 1).unwrap().is_empty());

        let permanent = heterogen_faults::FaultPlan::builder(1)
            .with_permanent_key(5)
            .build();
        let err = check_program_resilient(&p, &permanent, 5, 0).unwrap_err();
        assert!(!err.is_transient());
        // Other keys are untouched.
        assert!(check_program_resilient(&p, &permanent, 6, 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected poison fault")]
    fn resilient_check_poison_panics() {
        let p = minic::parse("void kernel(int a[4]) { a[0] = 1; }").unwrap();
        let plan = heterogen_faults::FaultPlan::builder(1)
            .with_poison_key(9)
            .build();
        let _ = check_program_resilient(&p, &plan, 9, 0);
    }

    #[test]
    fn multiple_errors_reported_together() {
        let ds = diags(
            r#"
            void t(int n) { if (n > 0) { t(n - 1); } }
            void kernel(int n) {
                long double x = 0.0L;
                int* p = (int*)malloc(n);
                t(n);
                free(p);
            }
        "#,
        );
        assert!(has_category(&ds, ErrorCategory::DynamicDataStructures));
        assert!(has_category(&ds, ErrorCategory::UnsupportedDataTypes));
        assert!(ds.len() >= 4);
    }
}
