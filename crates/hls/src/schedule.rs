//! FPGA latency and resource model.
//!
//! The model converts an executed kernel's dynamic statistics (abstract op
//! count and per-loop iteration counts from [`minic_exec::Machine`]) into
//! cycles, applying the standard HLS optimization effects:
//!
//! * **pipeline** — a loop body of weight `w` at initiation interval `II`
//!   retires one iteration every `II` cycles instead of every `w`;
//! * **unroll** — factor `f` processes `f` iterations at once, limited by
//!   the memory ports of the arrays it touches (their `array_partition`
//!   factors, 2 ports by default — dual-port BRAM);
//! * **dataflow** — top-level tasks overlap, shrinking the serial sum
//!   toward the slowest task.
//!
//! Unoptimized designs come out *slower* than CPU (250 MHz vs a ~GHz core),
//! which reproduces the paper's P1 row where the FPGA version never wins.

use crate::check::{collect_loops, partition_factors};
use minic::ast::*;
use minic::visit;
use std::collections::BTreeMap;

/// FPGA scheduling/latency estimate for one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaEstimate {
    /// Estimated execution cycles.
    pub cycles: f64,
    /// Latency in milliseconds at the design clock.
    pub latency_ms: f64,
    /// Effective op count after parallelization (diagnostic).
    pub effective_ops: f64,
}

/// Model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleModel {
    /// Cycles per abstract (unoptimized) operation.
    pub cycles_per_op: f64,
    /// Memory ports per unpartitioned array (dual-port BRAM).
    pub default_ports: u32,
    /// Hard cap on combined per-loop speedup.
    pub max_speedup: f64,
    /// Pipeline fill cost per loop entry, in cycles.
    pub pipeline_fill: f64,
    /// Per-iteration loop-control ops (counter, compare, branch); a
    /// pipelined loop hides these along with the body.
    pub loop_control_ops: f64,
}

impl Default for ScheduleModel {
    fn default() -> Self {
        ScheduleModel {
            cycles_per_op: 1.0,
            default_ports: 2,
            max_speedup: 24.0,
            pipeline_fill: 6.0,
            loop_control_ops: 6.0,
        }
    }
}

/// Static weight (node count) of a block, excluding nested loop bodies
/// (those are accounted by the nested loop's own entry). Calls to loop-free
/// defined functions contribute their callee's body weight — HLS inlines
/// small helpers into the pipelined caller loop.
fn body_weight(p: &Program, b: &Block) -> f64 {
    let mut w = 0f64;
    for s in &b.stmts {
        w += stmt_weight(p, s);
    }
    w.max(1.0)
}

/// Body weight of a loop-free callee, for bounded inlining (depth 2:
/// helpers like `push_front` calling `S_malloc` still inline). Returns
/// `None` when the callee is unknown, has loops, or exceeds the depth.
fn inlinable_weight(p: &Program, name: &str, depth: u8) -> Option<f64> {
    let f = p.function(name)?;
    let body = f.body.as_ref()?;
    let mut has_loop = false;
    let mut nested_calls: Vec<String> = Vec::new();
    for s in &body.stmts {
        visit::walk_stmt(s, &mut |s| {
            if matches!(
                s.kind,
                StmtKind::While(..) | StmtKind::DoWhile(..) | StmtKind::For(..)
            ) {
                has_loop = true;
            }
        });
        visit::walk_stmt_exprs(s, &mut |e| {
            if let ExprKind::Call(n, _) = &e.kind {
                if p.function(n).is_some() {
                    nested_calls.push(n.clone());
                }
            }
        });
    }
    if has_loop {
        return None;
    }
    let mut w = body_weight_flat(p, body);
    for n in nested_calls {
        if depth == 0 || n == name {
            return None;
        }
        w += inlinable_weight(p, &n, depth - 1)?;
    }
    Some(w)
}

/// Body weight without call inlining (used inside [`inlinable_weight`] to
/// avoid double counting the nested calls it adds explicitly).
fn body_weight_flat(_p: &Program, b: &Block) -> f64 {
    let mut w = 0f64;
    for s in &b.stmts {
        visit::walk_stmt(s, &mut |_| w += 1.0);
        visit::walk_stmt_exprs(s, &mut |_| w += 1.0);
    }
    w.max(1.0)
}

fn stmt_weight(p: &Program, s: &Stmt) -> f64 {
    match &s.kind {
        StmtKind::While(c, _) | StmtKind::DoWhile(_, c) => 1.0 + expr_weight(p, c),
        StmtKind::For(init, cond, step, _) => {
            1.0 + init.as_ref().map(|s| stmt_weight(p, s)).unwrap_or(0.0)
                + cond.as_ref().map(|e| expr_weight(p, e)).unwrap_or(0.0)
                + step.as_ref().map(|e| expr_weight(p, e)).unwrap_or(0.0)
        }
        StmtKind::If(c, t, e) => {
            1.0 + expr_weight(p, c)
                + body_weight(p, t)
                + e.as_ref().map(|b| body_weight(p, b)).unwrap_or(0.0)
        }
        StmtKind::Decl(d) => 1.0 + d.init.as_ref().map(|e| expr_weight(p, e)).unwrap_or(0.0),
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => 1.0 + expr_weight(p, e),
        StmtKind::Block(b) => body_weight(p, b),
        _ => 1.0,
    }
}

fn expr_weight(p: &Program, e: &Expr) -> f64 {
    let mut n = 0f64;
    visit::walk_expr(e, &mut |x| {
        n += 1.0;
        if let ExprKind::Call(callee, _) = &x.kind {
            if let Some(w) = inlinable_weight(p, callee, 2) {
                n += w;
            }
        }
    });
    n
}

/// Static body weight of one loop (by statement id) within a function —
/// the benefit estimate performance exploration uses to rank candidate
/// pragma insertions (heavier × hotter loops first).
pub fn loop_weight(p: &Program, f: &Function, id: NodeId) -> Option<f64> {
    find_loop_body(f, id).map(|b| body_weight(p, b))
}

/// Computes the effective per-iteration speedup of a loop from its pragmas.
fn loop_speedup(
    model: &ScheduleModel,
    body_w: f64,
    pragmas: &[PragmaKind],
    arrays: &[String],
    partitions: &BTreeMap<String, u32>,
) -> f64 {
    let mut s = 1.0f64;
    for pk in pragmas {
        match pk {
            PragmaKind::Pipeline { ii } => {
                let ii = ii.unwrap_or(1).max(1) as f64;
                s *= (body_w / ii).clamp(1.0, 10.0);
            }
            PragmaKind::Unroll { factor } => {
                let f = factor.unwrap_or(64).max(1);
                let port_limit = if arrays.is_empty() {
                    u32::MAX
                } else {
                    arrays
                        .iter()
                        .map(|a| *partitions.get(a).unwrap_or(&model.default_ports))
                        .min()
                        .unwrap_or(model.default_ports)
                };
                s *= f.min(port_limit) as f64;
            }
            _ => {}
        }
    }
    s.clamp(1.0, model.max_speedup)
}

/// Estimates FPGA latency for a kernel run.
///
/// `total_ops` and `loop_iters` come from a [`minic_exec::Machine`] that
/// executed the kernel in FPGA mode; `clock_mhz` from the design config.
pub fn estimate_latency(
    model: &ScheduleModel,
    program: &Program,
    total_ops: u64,
    loop_iters: &BTreeMap<NodeId, u64>,
    clock_mhz: f64,
) -> FpgaEstimate {
    let mut effective = total_ops as f64;
    let mut fill = 0.0;
    // Functions and struct methods alike host schedulable loops.
    let mut units: Vec<&Function> = program.functions().collect();
    for item in &program.items {
        if let Item::Struct(sd) = item {
            units.extend(sd.methods.iter().filter(|m| m.body.is_some()));
        }
    }
    for f in units {
        let parts = partition_factors(f);
        for l in collect_loops(program, f) {
            let iters = *loop_iters.get(&l.id).unwrap_or(&0);
            if iters == 0 {
                continue;
            }
            let w = match find_loop_body(f, l.id) {
                Some(b) => body_weight(program, b),
                None => continue,
            };
            let w = w + model.loop_control_ops;
            let s = loop_speedup(model, w, &l.pragmas, &l.arrays_accessed, &parts);
            if s > 1.0 {
                let loop_ops = iters as f64 * w;
                let capped = loop_ops.min(effective);
                effective -= capped * (1.0 - 1.0 / s);
                if l.pragmas
                    .iter()
                    .any(|p| matches!(p, PragmaKind::Pipeline { .. }))
                {
                    fill += model.pipeline_fill;
                }
            }
        }
    }
    // Dataflow overlap at the top function.
    if let Some(top) = program
        .top_function_name()
        .and_then(|n| program.function(n))
    {
        if let Some(body) = &top.body {
            let has_dataflow = body
                .stmts
                .iter()
                .any(|s| matches!(&s.kind, StmtKind::Pragma(p) if p.kind == PragmaKind::Dataflow));
            if has_dataflow {
                let tasks = body
                    .stmts
                    .iter()
                    .filter(|s| {
                        matches!(
                            &s.kind,
                            StmtKind::Expr(e) if matches!(
                                e.kind,
                                ExprKind::Call(..) | ExprKind::MethodCall(..)
                            )
                        )
                    })
                    .count();
                if tasks >= 2 {
                    let overlap = (1.0 + 0.6 * (tasks as f64 - 1.0)).min(3.0);
                    effective /= overlap;
                }
            }
        }
    }
    // Amdahl floor: control, interface and memory traffic bound the whole-
    // kernel speedup regardless of how parallel the loops are.
    effective = effective.max(total_ops as f64 * 0.05);
    let cycles = effective * model.cycles_per_op + fill;
    FpgaEstimate {
        cycles,
        latency_ms: cycles / (clock_mhz * 1e3),
        effective_ops: effective,
    }
}

fn find_loop_body(f: &Function, id: NodeId) -> Option<&Block> {
    fn in_block(b: &Block, id: NodeId) -> Option<&Block> {
        for s in &b.stmts {
            if s.id == id {
                match &s.kind {
                    StmtKind::While(_, body)
                    | StmtKind::DoWhile(body, _)
                    | StmtKind::For(_, _, _, body) => return Some(body),
                    _ => return None,
                }
            }
            let nested = match &s.kind {
                StmtKind::If(_, t, e) => {
                    in_block(t, id).or_else(|| e.as_ref().and_then(|e| in_block(e, id)))
                }
                StmtKind::While(_, body)
                | StmtKind::DoWhile(body, _)
                | StmtKind::For(_, _, _, body)
                | StmtKind::Block(body) => in_block(body, id),
                _ => None,
            };
            if nested.is_some() {
                return nested;
            }
        }
        None
    }
    f.body.as_ref().and_then(|b| in_block(b, id))
}

/// A crude LUT/FF resource estimate: the sum of declared integer bit widths
/// plus array storage bits. Used by the bitwidth-finitization ablation —
/// narrower profiled types should shrink this number.
pub fn resource_estimate(p: &Program) -> u64 {
    let mut bits: u64 = 0;
    let mut add_type = |t: &minic::types::Type| {
        let scalar_bits = t.int_bits().map(u64::from).unwrap_or(match t {
            minic::types::Type::Float => 32,
            minic::types::Type::Double | minic::types::Type::LongDouble => 64,
            minic::types::Type::FpgaFloat { exp, mant } => (exp + mant + 1) as u64,
            _ => 0,
        });
        bits += scalar_bits;
        if let minic::types::Type::Array(inner, size) = t {
            let n = size.as_const().unwrap_or(0).min(65536);
            let inner_bits = inner.int_bits().map(u64::from).unwrap_or(32);
            bits += n * inner_bits;
        }
    };
    let mut q = p.clone();
    minic::visit::visit_types_mut(&mut q, &mut |t| add_type(t));
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic_exec::{Machine, MachineConfig};

    fn run_and_estimate(src: &str, args: Vec<minic_exec::Value>) -> FpgaEstimate {
        let p = minic::parse(src).unwrap();
        let mut m = Machine::new(&p, MachineConfig::fpga()).unwrap();
        let top = p.top_function_name().unwrap().to_string();
        m.run_function(&top, args).unwrap();
        estimate_latency(&ScheduleModel::default(), &p, m.ops(), &m.loop_stats, 250.0)
    }

    #[test]
    fn unoptimized_loop_has_no_speedup() {
        let e = run_and_estimate(
            "void kernel(int n) { int a[64]; for (int i = 0; i < 64; i++) { a[i] = n; } }",
            vec![minic_exec::Value::int(1)],
        );
        // effective ops equal raw ops (no pragmas)
        assert!(e.cycles > 100.0);
    }

    #[test]
    fn pipeline_reduces_cycles() {
        let base = run_and_estimate(
            "void kernel(int n) { int a[64]; for (int i = 0; i < 64; i++) { a[i] = n * 2 + 1; } }",
            vec![minic_exec::Value::int(1)],
        );
        let piped = run_and_estimate(
            "void kernel(int n) { int a[64]; for (int i = 0; i < 64; i++) {\n#pragma HLS pipeline\n a[i] = n * 2 + 1; } }",
            vec![minic_exec::Value::int(1)],
        );
        assert!(
            piped.cycles < base.cycles * 0.6,
            "pipeline {} vs base {}",
            piped.cycles,
            base.cycles
        );
    }

    #[test]
    fn unroll_limited_by_ports_without_partition() {
        let unrolled = run_and_estimate(
            "void kernel(int n) { int a[64]; for (int i = 0; i < 64; i++) {\n#pragma HLS unroll factor=16\n a[i] = n; } }",
            vec![minic_exec::Value::int(1)],
        );
        let partitioned = run_and_estimate(
            "void kernel(int n) { int a[64];\n#pragma HLS array_partition variable=a factor=16 dim=1\n for (int i = 0; i < 64; i++) {\n#pragma HLS unroll factor=16\n a[i] = n; } }",
            vec![minic_exec::Value::int(1)],
        );
        assert!(
            partitioned.cycles < unrolled.cycles,
            "partitioned {} vs unrolled-only {}",
            partitioned.cycles,
            unrolled.cycles
        );
    }

    #[test]
    fn dataflow_overlaps_tasks() {
        let serial = run_and_estimate(
            r#"
            void t1(int a[32]) { for (int i = 0; i < 32; i++) { a[i] = a[i] + 1; } }
            void t2(int b[32]) { for (int i = 0; i < 32; i++) { b[i] = b[i] * 2; } }
            void kernel(int x) { int a[32]; int b[32]; t1(a); t2(b); }
        "#,
            vec![minic_exec::Value::int(1)],
        );
        let overlapped = run_and_estimate(
            r#"
            void t1(int a[32]) { for (int i = 0; i < 32; i++) { a[i] = a[i] + 1; } }
            void t2(int b[32]) { for (int i = 0; i < 32; i++) { b[i] = b[i] * 2; } }
            void kernel(int x) {
            #pragma HLS dataflow
                int a[32]; int b[32]; t1(a); t2(b); }
        "#,
            vec![minic_exec::Value::int(1)],
        );
        assert!(overlapped.cycles < serial.cycles);
    }

    #[test]
    fn resource_estimate_shrinks_with_narrow_types() {
        let wide =
            minic::parse("void kernel(int a[64]) { int r = 0; r = a[0]; a[0] = r; }").unwrap();
        let narrow = minic::parse(
            "void kernel(fpga_uint<7> a[64]) { fpga_uint<7> r = 0; r = a[0]; a[0] = r; }",
        )
        .unwrap();
        assert!(resource_estimate(&narrow) < resource_estimate(&wide));
    }

    #[test]
    fn latency_uses_clock() {
        let p = minic::parse("void kernel(int a[4]) { a[0] = 1; }").unwrap();
        let model = ScheduleModel::default();
        let slow = estimate_latency(&model, &p, 1000, &BTreeMap::new(), 100.0);
        let fast = estimate_latency(&model, &p, 1000, &BTreeMap::new(), 400.0);
        assert!((slow.latency_ms / fast.latency_ms - 4.0).abs() < 1e-9);
    }
}
