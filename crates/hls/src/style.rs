//! The lightweight coding-style checker.
//!
//! This is the reproduction of HeteroGen's "LLVM front-end for HLS" trick
//! (paper §5.3): a cheap structural pass that rejects obviously malformed
//! repair candidates *before* the expensive full compilation. It checks
//! pragma placement and reference validity only — semantic rules (factor
//! divisibility, dataflow argument sharing, …) are deliberately left to the
//! full checker, so the two passes have genuinely different costs and
//! coverage, which is what makes the paper's Figure 9 ablation meaningful.

use minic::ast::*;
use minic::visit;
use std::fmt;

/// A coding-style violation found by the cheap pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StyleViolation {
    /// Human-readable description.
    pub message: String,
    /// Enclosing function, when applicable.
    pub function: Option<String>,
}

impl fmt::Display for StyleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "style: {} (in `{func}`)", self.message),
            None => write!(f, "style: {}", self.message),
        }
    }
}

/// Runs the style check. An empty result means the candidate is worth a full
/// compilation.
///
/// # Examples
///
/// ```
/// // An unroll pragma outside any loop is a style violation.
/// let p = minic::parse("void kernel(int a[4]) {\n#pragma HLS unroll factor=2\n a[0] = 1; }").unwrap();
/// assert!(!hls_sim::style::check_style(&p).is_empty());
/// ```
pub fn check_style(p: &Program) -> Vec<StyleViolation> {
    let mut out = Vec::new();
    for f in p.functions() {
        check_function(p, f, &mut out);
    }
    // File-scope pragmas: only `top`/config-like directives make sense.
    for item in &p.items {
        if let Item::Pragma(pr) = item {
            match &pr.kind {
                PragmaKind::Top { .. } | PragmaKind::Other(_) | PragmaKind::Interface { .. } => {}
                other => out.push(StyleViolation {
                    message: format!(
                        "pragma `{other:?}` is not valid at file scope; it must appear inside a function"
                    ),
                    function: None,
                }),
            }
        }
    }
    out
}

/// Whether the program passes the cheap style check.
pub fn conforms(p: &Program) -> bool {
    check_style(p).is_empty()
}

fn check_function(p: &Program, f: &Function, out: &mut Vec<StyleViolation>) {
    let Some(body) = &f.body else { return };
    // Function-level pragma placement: walk the statement tree, tracking
    // whether we are inside a loop body.
    for s in &body.stmts {
        check_stmt(p, f, s, false, out);
    }
    // `dataflow` must be at the top of the function body, not nested.
    let mut seen_non_pragma = false;
    for s in &body.stmts {
        match &s.kind {
            StmtKind::Pragma(pr) => {
                if pr.kind == PragmaKind::Dataflow && seen_non_pragma {
                    out.push(StyleViolation {
                        message: "dataflow pragma must be the first statement of the function body"
                            .to_string(),
                        function: Some(f.name.clone()),
                    });
                }
            }
            StmtKind::Decl(_) | StmtKind::Empty | StmtKind::Label(_) => {}
            _ => seen_non_pragma = true,
        }
    }
}

fn check_stmt(p: &Program, f: &Function, s: &Stmt, in_loop: bool, out: &mut Vec<StyleViolation>) {
    match &s.kind {
        StmtKind::Pragma(pr) => match &pr.kind {
            PragmaKind::Dataflow if in_loop => {
                out.push(StyleViolation {
                    message: "dataflow pragma is not valid inside a loop body".to_string(),
                    function: Some(f.name.clone()),
                });
            }
            PragmaKind::Unroll { factor } => {
                if !in_loop {
                    out.push(StyleViolation {
                        message: "unroll pragma must appear within a loop body".to_string(),
                        function: Some(f.name.clone()),
                    });
                }
                if let Some(0) = factor {
                    out.push(StyleViolation {
                        message: "unroll factor must be positive".to_string(),
                        function: Some(f.name.clone()),
                    });
                }
            }
            PragmaKind::Pipeline { ii } => {
                if !in_loop {
                    out.push(StyleViolation {
                        message: "pipeline pragma must appear within a loop body".to_string(),
                        function: Some(f.name.clone()),
                    });
                }
                if let Some(0) = ii {
                    out.push(StyleViolation {
                        message: "pipeline II must be positive".to_string(),
                        function: Some(f.name.clone()),
                    });
                }
            }
            PragmaKind::ArrayPartition {
                var,
                factor,
                complete,
                ..
            } => {
                if minic::edit::declared_type(p, Some(&f.name), var).is_none() {
                    out.push(StyleViolation {
                        message: format!(
                            "array_partition references `{var}`, which is not declared in scope"
                        ),
                        function: Some(f.name.clone()),
                    });
                } else if let Some(ty) = minic::edit::declared_type(p, Some(&f.name), var) {
                    if !ty.is_array() {
                        out.push(StyleViolation {
                            message: format!("array_partition target `{var}` is not an array"),
                            function: Some(f.name.clone()),
                        });
                    }
                }
                if !complete && *factor == 0 {
                    out.push(StyleViolation {
                        message: "array_partition needs a positive factor or `complete`"
                            .to_string(),
                        function: Some(f.name.clone()),
                    });
                }
            }
            PragmaKind::LoopTripcount { min, max } => {
                if !in_loop {
                    out.push(StyleViolation {
                        message: "loop_tripcount pragma must appear within a loop body".to_string(),
                        function: Some(f.name.clone()),
                    });
                }
                if min > max {
                    out.push(StyleViolation {
                        message: format!("loop_tripcount min {min} exceeds max {max}"),
                        function: Some(f.name.clone()),
                    });
                }
            }
            _ => {}
        },
        StmtKind::If(_, t, e) => {
            for st in &t.stmts {
                check_stmt(p, f, st, in_loop, out);
            }
            if let Some(e) = e {
                for st in &e.stmts {
                    check_stmt(p, f, st, in_loop, out);
                }
            }
        }
        StmtKind::While(_, b) | StmtKind::DoWhile(b, _) | StmtKind::For(_, _, _, b) => {
            for st in &b.stmts {
                check_stmt(p, f, st, true, out);
            }
        }
        StmtKind::Block(b) => {
            for st in &b.stmts {
                check_stmt(p, f, st, in_loop, out);
            }
        }
        _ => {}
    }
    // Statement-level: nothing else to check.
    let _ = visit::walk_stmt_exprs;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<StyleViolation> {
        check_style(&minic::parse(src).unwrap())
    }

    #[test]
    fn clean_program_conforms() {
        let v = violations(
            r#"
            void kernel(int a[8]) {
            #pragma HLS dataflow
                for (int i = 0; i < 8; i++) {
            #pragma HLS unroll factor=2
                    a[i] = a[i] + 1;
                }
            }
        "#,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unroll_outside_loop_rejected() {
        let v = violations("void kernel(int a[4]) {\n#pragma HLS unroll factor=2\n a[0] = 1; }");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("within a loop"));
    }

    #[test]
    fn pipeline_outside_loop_rejected() {
        let v = violations("void kernel(int a[4]) {\n#pragma HLS pipeline\n a[0] = 1; }");
        assert!(!v.is_empty());
    }

    #[test]
    fn partition_unknown_variable_rejected() {
        let v = violations(
            "void kernel(int a[4]) {\n#pragma HLS array_partition variable=zz factor=2\n a[0] = 1; }",
        );
        assert!(v.iter().any(|x| x.message.contains("zz")));
    }

    #[test]
    fn partition_non_array_rejected() {
        let v = violations(
            "void kernel(int a[4]) { int s = 0;\n#pragma HLS array_partition variable=s factor=2\n a[0] = s; }",
        );
        assert!(v.iter().any(|x| x.message.contains("not an array")));
    }

    #[test]
    fn dataflow_must_lead_the_body() {
        let v = violations(
            "void task(int a[4]) { a[0] = 1; }\nvoid kernel(int a[4]) { task(a);\n#pragma HLS dataflow\n }",
        );
        assert!(v.iter().any(|x| x.message.contains("first statement")));
    }

    #[test]
    fn zero_factor_rejected() {
        let v = violations(
            "void kernel(int a[4]) { for (int i = 0; i < 4; i++) {\n#pragma HLS unroll factor=0\n a[i] = 0; } }",
        );
        assert!(v.iter().any(|x| x.message.contains("positive")));
    }

    #[test]
    fn tripcount_bounds_checked() {
        let v = violations(
            "void kernel(int a[4]) { for (int i = 0; i < 4; i++) {\n#pragma HLS loop_tripcount min=9 max=2\n a[i] = 0; } }",
        );
        assert!(v.iter().any(|x| x.message.contains("exceeds")));
    }

    #[test]
    fn style_misses_semantic_errors_by_design() {
        // Factor 4 on a 13-element array passes *style* (placement is fine)
        // but fails the *full* check — the separation that makes the
        // checker ablation meaningful.
        let src = r#"
            void kernel(int x) {
                int A[13];
            #pragma HLS array_partition variable=A factor=4 dim=1
                for (int i = 0; i < 13; i++) { A[i] = x; }
            }
        "#;
        let p = minic::parse(src).unwrap();
        assert!(check_style(&p).is_empty());
        assert!(!crate::check::check_program(&p).is_empty());
    }
}
