//! Simulated HLS toolchain: synthesizability checking, coding-style
//! checking, scheduling/latency estimation, FPGA behavioural simulation, and
//! compile-time cost accounting.
//!
//! The crate replaces the proprietary Vivado HLS flow the paper drives. Its
//! observable interface matches what HeteroGen's repair loop needs:
//!
//! 1. [`check::check_program`] — the *expensive* full check, emitting
//!    Vivado-style diagnostics for the six error categories;
//! 2. [`style::check_style`] — the *cheap* structural pre-check (the
//!    paper's lightweight LLVM front-end);
//! 3. [`sim::FpgaSimulator`] — behaviour + latency of a synthesizable
//!    design under test inputs, with hardware finitization semantics;
//! 4. [`cost::CompileCostModel`] / [`cost::SimClock`] — simulated minutes
//!    billed per invocation, reproducing the paper's time dynamics without
//!    hour-long real waits.
//!
//! # Examples
//!
//! ```
//! let p = minic::parse("int kernel(int n) { return kernel(n); }").unwrap();
//! let diags = hls_sim::check_program(&p);
//! assert!(diags.iter().any(|d| d.message.contains("recursive")));
//! ```

pub mod check;
pub mod cost;
pub mod errors;
pub mod schedule;
pub mod sim;
pub mod style;

pub use check::{check_program, check_program_resilient, is_synthesizable};
pub use cost::{CompileCostModel, SimClock};
pub use errors::{ErrorCategory, HlsDiagnostic, ToolchainError};
pub use schedule::{resource_estimate, FpgaEstimate, ScheduleModel};
pub use sim::{FpgaSimulator, SimResult};
pub use style::{check_style, conforms, StyleViolation};
