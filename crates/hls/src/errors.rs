//! HLS diagnostics: the six compatibility-error categories of the paper's
//! forum study (§5.1, Table 1, Figure 3) and Vivado-style messages.

use minic::ast::NodeId;
use std::fmt;

/// The six HLS incompatibility categories from the paper's study of 1,000
/// Xilinx forum posts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorCategory {
    /// `malloc`/`free`, unknown-size arrays, recursion.
    DynamicDataStructures,
    /// `long double`, raw pointers, missing operator support.
    UnsupportedDataTypes,
    /// `#pragma HLS dataflow` constraint violations.
    DataflowOptimization,
    /// Unroll/pipeline/partition interactions.
    LoopParallelization,
    /// Unsynthesizable structs and unions.
    StructAndUnion,
    /// Missing/incorrect top-function configuration.
    TopFunction,
}

impl ErrorCategory {
    /// All categories in the order of the paper's pie chart (Figure 3).
    pub const ALL: [ErrorCategory; 6] = [
        ErrorCategory::UnsupportedDataTypes,
        ErrorCategory::TopFunction,
        ErrorCategory::DataflowOptimization,
        ErrorCategory::LoopParallelization,
        ErrorCategory::StructAndUnion,
        ErrorCategory::DynamicDataStructures,
    ];

    /// The Figure 3 proportion of this category among forum posts.
    pub fn forum_share(self) -> f64 {
        match self {
            ErrorCategory::UnsupportedDataTypes => 0.257,
            ErrorCategory::TopFunction => 0.198,
            ErrorCategory::DataflowOptimization => 0.161,
            ErrorCategory::LoopParallelization => 0.161,
            ErrorCategory::StructAndUnion => 0.141,
            ErrorCategory::DynamicDataStructures => 0.082,
        }
    }

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCategory::DynamicDataStructures => "Dynamic Data Structures",
            ErrorCategory::UnsupportedDataTypes => "Unsupported Data Types",
            ErrorCategory::DataflowOptimization => "Dataflow Optimization",
            ErrorCategory::LoopParallelization => "Loop Parallelization",
            ErrorCategory::StructAndUnion => "Struct and Union",
            ErrorCategory::TopFunction => "Top Function",
        }
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic emitted by the (simulated) HLS compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlsDiagnostic {
    /// Vivado-style tool code, e.g. `XFORM 202-876`.
    pub code: String,
    /// Full message text (what the paper's keyword classifier sees).
    pub message: String,
    /// Ground-truth category (the classifier is evaluated against this).
    pub category: ErrorCategory,
    /// AST node the error is anchored to, when known.
    pub location: Option<NodeId>,
    /// The offending symbol (variable/function/struct name), when known.
    pub symbol: Option<String>,
    /// Enclosing function, when known.
    pub function: Option<String>,
}

impl HlsDiagnostic {
    /// Creates a diagnostic.
    pub fn new(
        code: impl Into<String>,
        message: impl Into<String>,
        category: ErrorCategory,
    ) -> HlsDiagnostic {
        HlsDiagnostic {
            code: code.into(),
            message: message.into(),
            category,
            location: None,
            symbol: None,
            function: None,
        }
    }

    /// Attaches an AST location.
    pub fn at(mut self, node: NodeId) -> Self {
        self.location = Some(node);
        self
    }

    /// Attaches the offending symbol.
    pub fn on(mut self, symbol: impl Into<String>) -> Self {
        self.symbol = Some(symbol.into());
        self
    }

    /// Attaches the enclosing function.
    pub fn in_function(mut self, f: impl Into<String>) -> Self {
        self.function = Some(f.into());
        self
    }
}

impl fmt::Display for HlsDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ERROR: [{}] {}", self.code, self.message)
    }
}

impl std::error::Error for HlsDiagnostic {}

/// A failure of the (simulated) toolchain *infrastructure* itself, as
/// opposed to an [`HlsDiagnostic`] about the program under compilation.
///
/// Real HLS installations fail intermittently — license-server hiccups,
/// co-simulation crashes, scratch-disk exhaustion — and a production
/// pipeline has to distinguish faults worth retrying from faults that will
/// recur no matter how often the same invocation is replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolchainError {
    /// A flaky failure; retrying the same invocation may succeed.
    Transient {
        /// Which toolchain stage failed (`hls_check`, `hls_sim`, `exec`).
        site: &'static str,
        /// Zero-based attempt number at which the fault struck.
        attempt: u32,
        /// Human-readable failure description.
        message: String,
    },
    /// A deterministic failure; retrying the same invocation cannot help.
    Permanent {
        /// Which toolchain stage failed.
        site: &'static str,
        /// Human-readable failure description.
        message: String,
    },
    /// A transient failure that persisted through every retry the policy
    /// allowed. Behaves like a permanent fault (same `Display` form), but
    /// remembers how many transient attempts were absorbed so resilience
    /// accounting can replay them.
    Exhausted {
        /// Which toolchain stage failed.
        site: &'static str,
        /// Transient attempts absorbed before giving up.
        attempts: u32,
        /// Full failure description (includes the attempt count).
        message: String,
    },
}

impl ToolchainError {
    /// Creates a transient (retryable) toolchain error.
    pub fn transient(site: &'static str, attempt: u32, message: impl Into<String>) -> Self {
        ToolchainError::Transient {
            site,
            attempt,
            message: message.into(),
        }
    }

    /// Creates a permanent (non-retryable) toolchain error.
    pub fn permanent(site: &'static str, message: impl Into<String>) -> Self {
        ToolchainError::Permanent {
            site,
            message: message.into(),
        }
    }

    /// Creates an exhausted-retries toolchain error: a transient fault that
    /// persisted through `attempts` attempts. Displays exactly like the
    /// permanent fault a retry loop would synthesize for it.
    pub fn exhausted(site: &'static str, attempts: u32, inner: impl fmt::Display) -> Self {
        ToolchainError::Exhausted {
            site,
            attempts,
            message: format!("transient fault persisted through {attempts} attempts: {inner}"),
        }
    }

    /// Whether a retry of the same invocation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, ToolchainError::Transient { .. })
    }

    /// Whether this is a transient fault that exhausted its retry policy.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, ToolchainError::Exhausted { .. })
    }

    /// Transient attempts absorbed before this error was produced (0 except
    /// for [`ToolchainError::Exhausted`]).
    pub fn absorbed_transients(&self) -> u32 {
        match self {
            ToolchainError::Exhausted { attempts, .. } => *attempts,
            _ => 0,
        }
    }

    /// The toolchain stage that failed.
    pub fn site(&self) -> &'static str {
        match self {
            ToolchainError::Transient { site, .. }
            | ToolchainError::Permanent { site, .. }
            | ToolchainError::Exhausted { site, .. } => site,
        }
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        match self {
            ToolchainError::Transient { message, .. }
            | ToolchainError::Permanent { message, .. }
            | ToolchainError::Exhausted { message, .. } => message,
        }
    }
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolchainError::Transient {
                site,
                attempt,
                message,
            } => write!(
                f,
                "transient toolchain fault at {site} (attempt {attempt}): {message}"
            ),
            ToolchainError::Permanent { site, message }
            | ToolchainError::Exhausted { site, message, .. } => {
                write!(f, "permanent toolchain fault at {site}: {message}")
            }
        }
    }
}

impl std::error::Error for ToolchainError {}

/// Canonical diagnostics (one representative per category), mirroring the
/// paper's Table 1 examples. Used by Table 1 regeneration and tests.
pub fn table1_examples() -> Vec<(ErrorCategory, &'static str, &'static str)> {
    vec![
        (
            ErrorCategory::DynamicDataStructures,
            "SYNCHK 200-31",
            "dynamic memory allocation/deallocation is not supported",
        ),
        (
            ErrorCategory::UnsupportedDataTypes,
            "SYNCHK 200-11",
            "call of overloaded 'pow()' is ambiguous: type 'long double' is not synthesizable",
        ),
        (
            ErrorCategory::DataflowOptimization,
            "XFORM 202-711",
            "argument 'data' failed dataflow checking",
        ),
        (
            ErrorCategory::LoopParallelization,
            "HLS 200-70",
            "pre-synthesis failed: unroll and dataflow pragmas interact",
        ),
        (
            ErrorCategory::StructAndUnion,
            "SYNCHK 200-42",
            "argument 'this' has an unsynthesizable struct type",
        ),
        (
            ErrorCategory::TopFunction,
            "HLS 200-101",
            "cannot find the top function in the design",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forum_shares_sum_to_one() {
        let total: f64 = ErrorCategory::ALL.iter().map(|c| c.forum_share()).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn display_formats_like_vivado() {
        let d = HlsDiagnostic::new(
            "XFORM 202-876",
            "Synthesizability check failed: recursive functions are not supported.",
            ErrorCategory::DynamicDataStructures,
        );
        assert_eq!(
            d.to_string(),
            "ERROR: [XFORM 202-876] Synthesizability check failed: recursive functions are not supported."
        );
    }

    #[test]
    fn builder_attaches_context() {
        let d = HlsDiagnostic::new("X", "m", ErrorCategory::TopFunction)
            .on("curr")
            .in_function("traverse")
            .at(NodeId(3));
        assert_eq!(d.symbol.as_deref(), Some("curr"));
        assert_eq!(d.function.as_deref(), Some("traverse"));
        assert_eq!(d.location, Some(NodeId(3)));
    }

    #[test]
    fn toolchain_error_classification_round_trips() {
        let t = ToolchainError::transient("hls_check", 1, "license server timed out");
        assert!(t.is_transient());
        assert_eq!(t.site(), "hls_check");
        assert_eq!(t.message(), "license server timed out");
        assert_eq!(
            t.to_string(),
            "transient toolchain fault at hls_check (attempt 1): license server timed out"
        );
        let p = ToolchainError::permanent("hls_sim", "scratch disk full");
        assert!(!p.is_transient());
        assert_eq!(p.site(), "hls_sim");
        assert_eq!(
            p.to_string(),
            "permanent toolchain fault at hls_sim: scratch disk full"
        );
        assert_ne!(t, p);
    }

    #[test]
    fn exhausted_displays_like_a_synthesized_permanent_fault() {
        let e = ToolchainError::exhausted("hls_check", 4, "license server timed out");
        assert!(!e.is_transient());
        assert!(e.is_exhausted());
        assert_eq!(e.absorbed_transients(), 4);
        assert_eq!(e.site(), "hls_check");
        // Byte-identical to the permanent fault a retry loop used to
        // synthesize on exhaustion — pinned because chaos runs compare
        // `SearchStop::PermanentFault(e.to_string())` across configurations.
        assert_eq!(
            e.to_string(),
            ToolchainError::permanent(
                "hls_check",
                "transient fault persisted through 4 attempts: license server timed out"
            )
            .to_string()
        );
        assert_eq!(
            ToolchainError::permanent("exec", "x").absorbed_transients(),
            0
        );
    }

    #[test]
    fn errors_implement_std_error() {
        // Both error types participate in the std error ecosystem so callers
        // can box/propagate them uniformly; Display is the source of truth.
        let d: Box<dyn std::error::Error> = Box::new(HlsDiagnostic::new(
            "HLS 200-101",
            "Cannot find the top function in the design",
            ErrorCategory::TopFunction,
        ));
        assert!(d.to_string().starts_with("ERROR: [HLS 200-101]"));
        let e: Box<dyn std::error::Error> =
            Box::new(ToolchainError::transient("exec", 0, "fuel spike"));
        assert!(e.to_string().contains("transient"));
        let e: Box<dyn std::error::Error> =
            Box::new(ToolchainError::permanent("exec", "broken install"));
        assert!(e.to_string().contains("permanent"));
    }

    #[test]
    fn table1_covers_all_categories() {
        let ex = table1_examples();
        assert_eq!(ex.len(), 6);
        for c in ErrorCategory::ALL {
            assert!(ex.iter().any(|(cat, _, _)| *cat == c));
        }
    }
}
