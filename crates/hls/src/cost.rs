//! Simulated toolchain time accounting.
//!
//! Real HLS compilation takes minutes to hours (paper §1, §5.3); the
//! reproduction bills each toolchain invocation in *simulated minutes* on a
//! clock the repair loop carries around. The ratio between a cheap style
//! check and a full compile+simulate cycle is what produces the paper's
//! Figure 9 dynamics (the style checker obviating ~75% of full compiles on
//! P3 → ≈4× end-to-end speedup).

use minic::Program;

/// Cost model for simulated toolchain invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileCostModel {
    /// Minutes for the lightweight style check (LLVM front-end analog).
    pub style_check_min: f64,
    /// Base minutes for a full HLS compile (scheduling, binding, mapping).
    pub full_compile_base_min: f64,
    /// Additional minutes per line of code compiled.
    pub full_compile_per_loc_min: f64,
    /// Minutes per simulated test input (RTL co-simulation is slow).
    pub sim_per_test_min: f64,
    /// Minutes per CPU test execution (effectively free).
    pub cpu_per_test_min: f64,
}

impl Default for CompileCostModel {
    fn default() -> Self {
        CompileCostModel {
            style_check_min: 0.05,
            full_compile_base_min: 2.0,
            full_compile_per_loc_min: 0.02,
            sim_per_test_min: 0.002,
            cpu_per_test_min: 0.0002,
        }
    }
}

impl CompileCostModel {
    /// Cost of one style check on a program.
    pub fn style_check(&self, _p: &Program) -> f64 {
        self.style_check_min
    }

    /// Cost of one full HLS compilation.
    pub fn full_compile(&self, p: &Program) -> f64 {
        self.full_compile_loc(minic::loc(p))
    }

    /// Cost of one full HLS compilation of a program with `loc` lines.
    ///
    /// The repair loop's worker threads pre-compute each candidate's LOC
    /// while evaluating it, so the accounting thread can bill the compile
    /// without re-rendering the program.
    pub fn full_compile_loc(&self, loc: usize) -> f64 {
        self.full_compile_base_min + self.full_compile_per_loc_min * loc as f64
    }

    /// Cost of simulating `n` tests on the FPGA side.
    pub fn simulate(&self, n: usize) -> f64 {
        self.sim_per_test_min * n as f64
    }

    /// Cost of running `n` tests on the CPU side.
    pub fn cpu_tests(&self, n: usize) -> f64 {
        self.cpu_per_test_min * n as f64
    }
}

/// A simulated wall clock in minutes with an optional budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    elapsed_min: f64,
    budget_min: Option<f64>,
}

impl SimClock {
    /// Starts a clock with no budget.
    pub fn unbounded() -> SimClock {
        SimClock {
            elapsed_min: 0.0,
            budget_min: None,
        }
    }

    /// Starts a clock with a budget in minutes.
    pub fn with_budget(budget_min: f64) -> SimClock {
        SimClock {
            elapsed_min: 0.0,
            budget_min: Some(budget_min),
        }
    }

    /// Advances the clock.
    pub fn advance(&mut self, minutes: f64) {
        self.elapsed_min += minutes.max(0.0);
    }

    /// Minutes elapsed.
    pub fn elapsed_min(&self) -> f64 {
        self.elapsed_min
    }

    /// Whether the budget (if any) is exhausted.
    pub fn expired(&self) -> bool {
        match self.budget_min {
            Some(b) => self.elapsed_min >= b,
            None => false,
        }
    }

    /// Remaining minutes (infinity when unbounded).
    pub fn remaining_min(&self) -> f64 {
        match self.budget_min {
            Some(b) => (b - self.elapsed_min).max(0.0),
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_is_much_cheaper_than_full_compile() {
        let m = CompileCostModel::default();
        let p = minic::parse("void kernel(int a[4]) { a[0] = 1; }").unwrap();
        assert!(m.full_compile(&p) / m.style_check(&p) > 20.0);
    }

    #[test]
    fn full_compile_scales_with_loc() {
        let m = CompileCostModel::default();
        let small = minic::parse("void kernel(int a[4]) { a[0] = 1; }").unwrap();
        let big_src = format!(
            "void kernel(int a[64]) {{ {} }}",
            (0..60)
                .map(|i| format!("a[{i}] = {i};"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let big = minic::parse(&big_src).unwrap();
        assert!(m.full_compile(&big) > m.full_compile(&small));
    }

    #[test]
    fn clock_budget() {
        let mut c = SimClock::with_budget(10.0);
        assert!(!c.expired());
        c.advance(6.0);
        assert_eq!(c.remaining_min(), 4.0);
        c.advance(5.0);
        assert!(c.expired());
        assert_eq!(c.remaining_min(), 0.0);
    }

    #[test]
    fn unbounded_clock_never_expires() {
        let mut c = SimClock::unbounded();
        c.advance(1e9);
        assert!(!c.expired());
    }
}
