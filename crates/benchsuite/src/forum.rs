//! Synthetic Xilinx-forum corpus for the Figure 3 study.
//!
//! The paper collected 1,000 Q&A posts and grouped their root causes into
//! six categories with the proportions of Figure 3. We cannot ship forum
//! text, so this module generates a labelled corpus of error messages with
//! those exact proportions, drawn from several message templates per
//! category (including paraphrases, so the classifier is exercised beyond
//! the canonical Table 1 strings).

use hls_sim::ErrorCategory;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Message templates per category (representative of the symptom vocabulary
/// in the Xilinx forum posts the paper cites).
pub fn templates(c: ErrorCategory) -> &'static [&'static str] {
    match c {
        ErrorCategory::DynamicDataStructures => &[
            "ERROR: [SYNCHK 200-31] dynamic memory allocation/deallocation is not supported",
            "ERROR: [XFORM 202-876] Synthesizability check failed: recursive functions are not supported",
            "ERROR: [SYNCHK 200-61] unsupported memory access on variable which is (or contains) an array with unknown size at compile time",
            "malloc of line_buf_a fails synthesis: dynamic memory is not allowed in the kernel",
        ],
        ErrorCategory::UnsupportedDataTypes => &[
            "ERROR: call of overloaded 'pow()' is ambiguous for operand of type long double",
            "ERROR: [SYNCHK 200-11] type is not synthesizable; please use a supported data type",
            "pointer to pointer is not supported as a kernel argument value",
            "implicit conversion between ap_fixed widths rejected; add an explicit value cast",
            "long double arithmetic is not supported by the synthesizer data path",
        ],
        ErrorCategory::DataflowOptimization => &[
            "ERROR: [XFORM 202-711] Argument 'data' failed dataflow checking",
            "dataflow canonical form violated: the same buffer is consumed by two processes",
            "ERROR: dataflow checking failed because a channel is read by multiple regions",
        ],
        ErrorCategory::LoopParallelization => &[
            "ERROR: [HLS 200-70] Pre-synthesis failed after inserting the unroll directive",
            "unroll factor exceeds the loop bound; pre-synthesis failed",
            "ERROR: [XFORM 202-711] Array failed partition checking: factor does not divide extent",
            "pipeline II cannot be met for the inner loop; increase the tripcount bound",
        ],
        ErrorCategory::StructAndUnion => &[
            "ERROR: [SYNCHK 200-42] Argument 'this' has an unsynthesizable struct type",
            "struct with reference members cannot be instantiated without an explicit constructor",
            "union member access is not synthesizable in this context (struct layout unknown)",
        ],
        ErrorCategory::TopFunction => &[
            "ERROR: [HLS 200-101] Cannot find the top function in the design",
            "the configured top function name does not match any function in the project",
            "top function clock constraint is infeasible for the selected device",
        ],
    }
}

/// Generates a labelled corpus of `n` posts whose category mix follows the
/// Figure 3 proportions (deterministic per seed).
pub fn forum_corpus(n: usize, seed: u64) -> Vec<(String, ErrorCategory)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    // Allocate counts by share, largest remainder to the biggest category.
    let mut counts: Vec<(ErrorCategory, usize)> = ErrorCategory::ALL
        .iter()
        .map(|c| (*c, (c.forum_share() * n as f64).round() as usize))
        .collect();
    let total: usize = counts.iter().map(|(_, k)| k).sum();
    if total != n {
        counts[0].1 = counts[0].1 + n - total.min(n);
    }
    for (c, k) in counts {
        let ts = templates(c);
        for i in 0..k {
            let t = ts[i % ts.len()];
            out.push((format!("post#{:04}: {t}", out.len()), c));
        }
    }
    out.shuffle(&mut rng);
    out.truncate(n);
    out
}

/// Tallies a labelled corpus into per-category counts, in `ALL` order.
pub fn tally(corpus: &[(String, ErrorCategory)]) -> Vec<(ErrorCategory, usize)> {
    ErrorCategory::ALL
        .iter()
        .map(|c| (*c, corpus.iter().filter(|(_, k)| k == c).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_mix() {
        let corpus = forum_corpus(1000, 42);
        assert_eq!(corpus.len(), 1000);
        for (c, count) in tally(&corpus) {
            let want = c.forum_share() * 1000.0;
            assert!(
                (count as f64 - want).abs() <= 12.0,
                "{c}: {count} vs expected {want}"
            );
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(forum_corpus(100, 7), forum_corpus(100, 7));
        assert_ne!(forum_corpus(100, 7), forum_corpus(100, 8));
    }

    #[test]
    fn every_category_has_templates() {
        for c in ErrorCategory::ALL {
            assert!(!templates(c).is_empty());
        }
    }
}
