//! The ten subject programs, one module per paper id.

pub mod p1;
pub mod p10;
pub mod p2;
pub mod p3;
pub mod p4;
pub mod p5;
pub mod p6;
pub mod p7;
pub mod p8;
pub mod p9;
