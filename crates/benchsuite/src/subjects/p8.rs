//! P8 — linked list: build, filter and fold a singly linked list.
//!
//! Pure dynamic-data-structure incompatibilities (`malloc`/`free` and
//! pointer-typed helpers) — one of the two subjects (with P3) inside
//! HeteroRefactor's scope.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
struct LNode {
    int val;
    struct LNode* next;
};

struct LNode* push_front(struct LNode* head, int v) {
    struct LNode* fresh = (struct LNode*)malloc(sizeof(struct LNode));
    fresh->val = v;
    fresh->next = head;
    return fresh;
}

int list_sum(struct LNode* head) {
    int sum = 0;
    struct LNode* cur = head;
    while (cur != 0) {
        sum = sum + cur->val;
        cur = cur->next;
    }
    return sum;
}

int list_max(struct LNode* head) {
    int best = -2147483647;
    struct LNode* cur = head;
    while (cur != 0) {
        if (cur->val > best) { best = cur->val; }
        cur = cur->next;
    }
    return best;
}

struct LNode* drop_negatives(struct LNode* head) {
    while (head != 0 && head->val < 0) {
        struct LNode* dead = head;
        head = head->next;
        free(dead);
    }
    struct LNode* cur = head;
    while (cur != 0 && cur->next != 0) {
        if (cur->next->val < 0) {
            struct LNode* dead = cur->next;
            cur->next = cur->next->next;
            free(dead);
        } else {
            cur = cur->next;
        }
    }
    return head;
}

int kernel(int vals[64], int n) {
    if (n > 64) { n = 64; }
    if (n < 1) { n = 1; }
    struct LNode* head = 0;
    for (int i = 0; i < n; i++) {
        head = push_front(head, vals[i]);
    }
    head = drop_negatives(head);
    if (head == 0) { return 0; }
    return list_sum(head) + list_max(head);
}
"#;

/// Hand-optimized HLS version: static pool, index links, pipelined scans.
pub const MANUAL: &str = r#"
#define POOL 64
int ln_val[POOL];
int ln_next[POOL];
int ln_top;

int push_front(int head, int v) {
    int id = ln_top;
    ln_top = ln_top + 1;
    ln_val[id] = v;
    ln_next[id] = head;
    return id;
}

int list_sum(int head) {
    int sum = 0;
    int cur = head;
    while (cur != 0) {
#pragma HLS pipeline II=1
        sum = sum + ln_val[cur];
        cur = ln_next[cur];
    }
    return sum;
}

int list_max(int head) {
    int best = -2147483647;
    int cur = head;
    while (cur != 0) {
#pragma HLS pipeline II=1
        if (ln_val[cur] > best) { best = ln_val[cur]; }
        cur = ln_next[cur];
    }
    return best;
}

int drop_negatives(int head) {
    while (head != 0 && ln_val[head] < 0) {
#pragma HLS pipeline II=1
        head = ln_next[head];
    }
    int cur = head;
    while (cur != 0 && ln_next[cur] != 0) {
#pragma HLS pipeline II=1
        if (ln_val[ln_next[cur]] < 0) {
            ln_next[cur] = ln_next[ln_next[cur]];
        } else {
            cur = ln_next[cur];
        }
    }
    return head;
}

int kernel(int vals[64], int n) {
#pragma HLS array_partition variable=ln_val factor=8 dim=1
#pragma HLS array_partition variable=ln_next factor=8 dim=1
    if (n > 64) { n = 64; }
    if (n < 1) { n = 1; }
    ln_top = 1;
    int head = 0;
    for (int i = 0; i < n; i++) {
#pragma HLS pipeline II=1
        head = push_front(head, vals[i]);
    }
    head = drop_negatives(head);
    if (head == 0) { return 0; }
    return list_sum(head) + list_max(head);
}
"#;

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P8",
        name: "linked list",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: Vec::new(),
        seed_inputs: vec![vec![
            ArgValue::IntArray((0..64).map(|i| i as i128 - 20).collect()),
            ArgValue::Int(60),
        ]],
        paper: PaperRow {
            origin_loc: 131,
            manual_delta_loc: 156,
            hg_delta_loc: 298,
            origin_ms: 3.46,
            manual_ms: 1.28,
            hg_ms: 1.79,
            hr_works: true,
            improved: true,
            existing_test_count: None,
            existing_coverage: None,
            hg_tests: 54,
            hg_time_min: 50.0,
            hg_coverage: 1.0,
        },
    }
}
