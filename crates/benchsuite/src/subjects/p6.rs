//! P6 — matrix multiplication (6×6) with a mis-factored `array_partition`.
//!
//! The paper's Background example: a partition factor that does not divide
//! the array extent fails checking (`XFORM-711`, 13 vs 4 there; 36 vs 8
//! here). Fixable by padding the array or lowering the factor; unrolling
//! the inner product afterwards is the performance win.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
#define DIM 6
void kernel(int a[36], int b[36], int c[36]) {
    int A[36];
#pragma HLS array_partition variable=A factor=8 dim=1
    for (int i = 0; i < 36; i++) {
        A[i] = a[i];
    }
    for (int i = 0; i < 6; i++) {
        for (int j = 0; j < 6; j++) {
            int acc = 0;
            for (int k = 0; k < 6; k++) {
                acc = acc + A[i * 6 + k] * b[k * 6 + j];
            }
            c[i * 6 + j] = acc;
        }
    }
}
"#;

/// Hand-optimized HLS version: padded, properly partitioned, fully unrolled
/// inner product with pipelined output loop.
pub const MANUAL: &str = r#"
#define DIM 6
void kernel(int a[36], int b[36], int c[36]) {
    int A[36];
#pragma HLS array_partition variable=A factor=6 dim=1
#pragma HLS array_partition variable=b factor=6 dim=1
#pragma HLS array_partition variable=c factor=6 dim=1
    for (int i = 0; i < 36; i++) {
#pragma HLS pipeline II=1
        A[i] = a[i];
    }
    for (int i = 0; i < 6; i++) {
        for (int j = 0; j < 6; j++) {
#pragma HLS pipeline II=1
            int acc = 0;
            for (int k = 0; k < 6; k++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=6
                acc = acc + A[i * 6 + k] * b[k * 6 + j];
            }
            c[i * 6 + j] = acc;
        }
    }
}
"#;

/// Pre-existing tests (4 tests, ~33% coverage in the paper).
pub fn existing_tests() -> Vec<Vec<ArgValue>> {
    (0..4)
        .map(|k| {
            let a: Vec<i128> = (0..36).map(|i| ((i + k) % 9) as i128).collect();
            let b: Vec<i128> = (0..36).map(|i| ((i * 2 + k) % 7) as i128).collect();
            vec![
                ArgValue::IntArray(a),
                ArgValue::IntArray(b),
                ArgValue::IntArray(vec![0; 36]),
            ]
        })
        .collect()
}

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P6",
        name: "matrix multiplication",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: existing_tests(),
        seed_inputs: vec![vec![
            ArgValue::IntArray((0..36).map(|i| i as i128 % 10).collect()),
            ArgValue::IntArray((0..36).map(|i| (i as i128 * 3) % 10).collect()),
            ArgValue::IntArray(vec![0; 36]),
        ]],
        paper: PaperRow {
            origin_loc: 19,
            manual_delta_loc: 25,
            hg_delta_loc: 16,
            origin_ms: 1.13,
            manual_ms: 0.35,
            hg_ms: 0.89,
            hr_works: false,
            improved: true,
            existing_test_count: Some(4),
            existing_coverage: Some(0.33),
            hg_tests: 14896,
            hg_time_min: 35.0,
            hg_coverage: 1.0,
        },
    }
}
