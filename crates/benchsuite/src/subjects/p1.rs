//! P1 — signal transmission: 3-channel RGB → YUV conversion.
//!
//! Basic arithmetic with `long double` intermediates and **no loops or
//! arrays to parallelize**: HeteroGen can fix the compatibility errors but
//! has no performance-improving edit to apply, so the FPGA version stays
//! slower than the CPU original (the single ✗ in the paper's Table 3).

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program (forum-derived draft).
pub const SOURCE: &str = r#"
float kernel(float rgb[3], float yuv[3]) {
    long double r = rgb[0];
    long double g = rgb[1];
    long double b = rgb[2];
    long double y = 0.299L * r + 0.587L * g + 0.114L * b;
    long double u = 0.436L * b - 0.14713L * r - 0.28886L * g;
    long double v = 0.615L * r - 0.51499L * g - 0.10001L * b;
    yuv[0] = (float)y;
    yuv[1] = (float)u;
    yuv[2] = (float)v;
    return (float)y;
}
"#;

/// A hand-optimized HLS version (what an expert would write): custom float
/// types, explicit casts.
pub const MANUAL: &str = r#"
float kernel(float rgb[3], float yuv[3]) {
    fpga_float<8,52> r = rgb[0];
    fpga_float<8,52> g = rgb[1];
    fpga_float<8,52> b = rgb[2];
    fpga_float<8,52> y = 0.299 * r + 0.587 * g + 0.114 * b;
    fpga_float<8,52> u = 0.436 * b - 0.14713 * r - 0.28886 * g;
    fpga_float<8,52> v = 0.615 * r - 0.51499 * g - 0.10001 * b;
    yuv[0] = (float)y;
    yuv[1] = (float)u;
    yuv[2] = (float)v;
    return (float)y;
}
"#;

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P1",
        name: "signal transmission",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: Vec::new(),
        seed_inputs: vec![vec![
            ArgValue::FloatArray(vec![128.0, 64.0, 32.0]),
            ArgValue::FloatArray(vec![0.0, 0.0, 0.0]),
        ]],
        paper: PaperRow {
            origin_loc: 15,
            manual_delta_loc: 78,
            hg_delta_loc: 69,
            origin_ms: 0.21,
            manual_ms: 0.11,
            hg_ms: 0.35,
            hr_works: false,
            improved: false,
            existing_test_count: None,
            existing_coverage: None,
            hg_tests: 27,
            hg_time_min: 35.0,
            hg_coverage: 1.0,
        },
    }
}
