//! P3 — merge sort: recursive divide-and-conquer sort over a global buffer.
//!
//! The subject of the paper's §6.2 stack-size case study (Figure 8): the
//! recursion depth is data-dependent (it sorts an `n`-element prefix with an
//! asymmetric split), so a stack sized from the shallow *pre-existing* tests
//! silently corrupts results on the deeper inputs the fuzzer generates —
//! caught only by differential testing, fixed by the `resize` edit.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
#define N 32
int ms_buf[N];
int ms_tmp[N];

void msort(int lo, int hi) {
    if (lo >= hi) { return; }
    int mid = lo + (hi - lo) / 4;
    msort(lo, mid);
    msort(mid + 1, hi);
    int i = lo;
    int j = mid + 1;
    int k = lo;
    while (i <= mid && j <= hi) {
        if (ms_buf[i] <= ms_buf[j]) {
            ms_tmp[k] = ms_buf[i];
            i = i + 1;
        } else {
            ms_tmp[k] = ms_buf[j];
            j = j + 1;
        }
        k = k + 1;
    }
    while (i <= mid) {
        ms_tmp[k] = ms_buf[i];
        i = i + 1;
        k = k + 1;
    }
    while (j <= hi) {
        ms_tmp[k] = ms_buf[j];
        j = j + 1;
        k = k + 1;
    }
    for (int t = lo; t <= hi; t = t + 1) {
        ms_buf[t] = ms_tmp[t];
    }
}

void kernel(int a[32], int n) {
    if (n > 32) { n = 32; }
    if (n < 1) { n = 1; }
    for (int i = 0; i < n; i++) { ms_buf[i] = a[i]; }
    msort(0, n - 1);
    for (int i = 0; i < n; i++) { a[i] = ms_buf[i]; }
}
"#;

/// A hand-optimized HLS version: iterative bottom-up merge sort with a
/// pipelined merge loop (what an expert writes instead of a stack machine).
pub const MANUAL: &str = r#"
#define N 32
int ms_buf[N];
int ms_tmp[N];

void merge_pass(int lo, int mid, int hi) {
#pragma HLS array_partition variable=ms_buf factor=8 dim=1
#pragma HLS array_partition variable=ms_tmp factor=8 dim=1
    int i = lo;
    int j = mid + 1;
    int k = lo;
    while (k <= hi) {
#pragma HLS pipeline II=1
        if (i <= mid && (j > hi || ms_buf[i] <= ms_buf[j])) {
            ms_tmp[k] = ms_buf[i];
            i = i + 1;
        } else {
            ms_tmp[k] = ms_buf[j];
            j = j + 1;
        }
        k = k + 1;
    }
    for (int t = lo; t <= hi; t = t + 1) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
        ms_buf[t] = ms_tmp[t];
    }
}

void kernel(int a[32], int n) {
    if (n > 32) { n = 32; }
    if (n < 1) { n = 1; }
    for (int i = 0; i < n; i++) {
#pragma HLS pipeline II=1
        ms_buf[i] = a[i];
    }
    for (int width = 1; width < 32; width = width * 2) {
        for (int lo = 0; lo < n; lo = lo + width * 2) {
            int mid = lo + width - 1;
            int hi = lo + width * 2 - 1;
            if (hi > n - 1) { hi = n - 1; }
            if (mid < hi) { merge_pass(lo, mid, hi); }
        }
    }
    for (int i = 0; i < n; i++) {
#pragma HLS pipeline II=1
        a[i] = ms_buf[i];
    }
}
"#;

/// Shallow pre-existing tests: small prefixes only (the paper reports 10
/// tests at 25% branch coverage). Their recursion stays shallow, which is
/// exactly what makes the initial stack size wrong.
pub fn existing_tests() -> Vec<Vec<ArgValue>> {
    (0..10)
        .map(|k| {
            let n = 3 + (k % 3); // n in 3..=5
            let vals: Vec<i128> = (0..32).map(|i| ((i * 7 + k * 13) % 40) as i128).collect();
            vec![ArgValue::IntArray(vals), ArgValue::Int(n as i128)]
        })
        .collect()
}

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P3",
        name: "merge sort",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: existing_tests(),
        seed_inputs: vec![vec![
            ArgValue::IntArray((0..32).map(|i| (31 - i) as i128).collect()),
            ArgValue::Int(8),
        ]],
        paper: PaperRow {
            origin_loc: 121,
            manual_delta_loc: 276,
            hg_delta_loc: 356,
            origin_ms: 1.46,
            manual_ms: 1.09,
            hg_ms: 1.13,
            hr_works: true,
            improved: true,
            existing_test_count: Some(10),
            existing_coverage: Some(0.25),
            hg_tests: 1800,
            hg_time_min: 50.0,
            hg_coverage: 1.0,
        },
    }
}
