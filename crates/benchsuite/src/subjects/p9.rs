//! P9 — face detection: a Viola–Jones-style streaming cascade (the largest
//! subject, from the Rosetta suite in the paper).
//!
//! The pipeline computes a running integral of the pixel stream and pushes
//! windows through two cascade stages built as stream-wrapper structs. Three
//! incompatibilities: the design configuration names a non-existent top
//! function (`face_top`), the stage struct has methods but no explicit
//! constructor, and the stream connecting two stage instances is not
//! `static` — the full Figure 5/7 error set plus a top-function error.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
#pragma HLS top name=face_top
#include <hls_stream.h>
#define WIN 8
#define FRAME 32

struct Stage {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    unsigned weak_response(unsigned left, unsigned right) {
        unsigned diff = 0u;
        if (left > right) {
            diff = left - right;
        } else {
            diff = right - left;
        }
        return diff;
    }
    void run() {
        unsigned window[WIN];
        unsigned fill = 0u;
        while (!in.empty()) {
            unsigned v = in.read();
            for (int i = 0; i < 7; i++) {
                window[i] = window[i + 1];
            }
            window[7] = v;
            if (fill < 7u) {
                fill = fill + 1u;
            } else {
                unsigned left = window[0] + window[1] + window[2] + window[3];
                unsigned right = window[4] + window[5] + window[6] + window[7];
                unsigned score = weak_response(left, right);
                out.write(score);
            }
        }
    }
};

void integral(hls::stream<unsigned> &pixels, hls::stream<unsigned> &sums) {
    unsigned acc = 0u;
    while (!pixels.empty()) {
        unsigned p = pixels.read();
        acc = acc + p;
        sums.write(acc);
    }
}

void detect(hls::stream<unsigned> &pixels, hls::stream<unsigned> &scores) {
#pragma HLS dataflow
    hls::stream<unsigned> ii;
    hls::stream<unsigned> mid;
    integral(pixels, ii);
    Stage{ii, mid}.run();
    Stage{mid, scores}.run();
}
"#;

/// Hand-optimized HLS version: explicit constructor, static channels,
/// correct top configuration, pipelined stage loops.
pub const MANUAL: &str = r#"
#pragma HLS top name=detect
#include <hls_stream.h>
#define WIN 8
#define FRAME 32

struct Stage {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    Stage(hls::stream<unsigned> &i, hls::stream<unsigned> &o) : in(i), out(o) {}
    unsigned weak_response(unsigned left, unsigned right) {
        unsigned diff = 0u;
        if (left > right) {
            diff = left - right;
        } else {
            diff = right - left;
        }
        return diff;
    }
    void run() {
        unsigned window[WIN];
        unsigned fill = 0u;
        while (!in.empty()) {
#pragma HLS pipeline II=1
            unsigned v = in.read();
            for (int i = 0; i < 7; i++) {
#pragma HLS unroll
                window[i] = window[i + 1];
            }
            window[7] = v;
            if (fill < 7u) {
                fill = fill + 1u;
            } else {
                unsigned left = window[0] + window[1] + window[2] + window[3];
                unsigned right = window[4] + window[5] + window[6] + window[7];
                unsigned score = weak_response(left, right);
                out.write(score);
            }
        }
    }
};

void integral(hls::stream<unsigned> &pixels, hls::stream<unsigned> &sums) {
    unsigned acc = 0u;
    while (!pixels.empty()) {
#pragma HLS pipeline II=1
        unsigned p = pixels.read();
        acc = acc + p;
        sums.write(acc);
    }
}

void detect(hls::stream<unsigned> &pixels, hls::stream<unsigned> &scores) {
#pragma HLS dataflow
    static hls::stream<unsigned> ii;
    static hls::stream<unsigned> mid;
    integral(pixels, ii);
    Stage{ii, mid}.run();
    Stage{mid, scores}.run();
}
"#;

/// The single pre-existing test the paper mentions (15% coverage).
pub fn existing_tests() -> Vec<Vec<ArgValue>> {
    vec![vec![
        ArgValue::IntStream((0..32).map(|i| (i % 7) as i128).collect()),
        ArgValue::IntStream(vec![]),
    ]]
}

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P9",
        name: "face detection",
        kernel: "detect",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: existing_tests(),
        seed_inputs: vec![vec![
            ArgValue::IntStream((0..32).map(|i| (i * 13 % 250) as i128).collect()),
            ArgValue::IntStream(vec![]),
        ]],
        paper: PaperRow {
            origin_loc: 465,
            manual_delta_loc: 3272,
            hg_delta_loc: 144,
            origin_ms: 101.0,
            manual_ms: 33.0,
            hg_ms: 47.0,
            hr_works: false,
            improved: true,
            existing_test_count: Some(1),
            existing_coverage: Some(0.15),
            hg_tests: 43,
            hg_time_min: 84.0,
            hg_coverage: 0.70,
        },
    }
}
