//! P10 — digit recognition: k-nearest-neighbour classification of 5×5
//! binary digit bitmaps by Hamming distance (Rosetta's digit recognition,
//! scaled to the interpreter).
//!
//! Two incompatibilities: a variable-length candidate-distance buffer
//! (unknown size at compile time) and an over-eager `unroll factor=64` on
//! the data-dependent selection loop inside a `dataflow` region.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
#define TRAIN 16
int train_bits[TRAIN] = {
    15, 51, 85, 51, 240, 204, 170, 204,
    3855, 13107, 21845, 13107, 61680, 52428, 43690, 52428
};
int train_label[TRAIN] = {
    0, 1, 2, 1, 3, 4, 5, 4,
    6, 7, 8, 7, 9, 4, 5, 4
};

int popcount25(int x) {
    int count = 0;
    for (int i = 0; i < 25; i++) {
        if (((x >> i) & 1) == 1) {
            count = count + 1;
        }
    }
    return count;
}

int kernel(int digit, int k) {
#pragma HLS dataflow
    if (k > 8) { k = 8; }
    if (k < 1) { k = 1; }
    int best_dist[k];
    int best_label[k];
    for (int i = 0; i < k; i++) {
        best_dist[i] = 26;
        best_label[i] = 0;
    }
    for (int t = 0; t < TRAIN; t++) {
        int d = popcount25(digit ^ train_bits[t]);
        int j = 0;
        while (j < k && best_dist[j] <= d) {
#pragma HLS unroll factor=64
            j = j + 1;
        }
        if (j < k) {
            for (int m = k - 1; m > j; m = m - 1) {
                best_dist[m] = best_dist[m - 1];
                best_label[m] = best_label[m - 1];
            }
            best_dist[j] = d;
            best_label[j] = train_label[t];
        }
    }
    int votes[10];
    for (int i = 0; i < 10; i++) { votes[i] = 0; }
    for (int i = 0; i < k; i++) {
        votes[best_label[i]] = votes[best_label[i]] + 1;
    }
    int best = 0;
    for (int i = 1; i < 10; i++) {
        if (votes[i] > votes[best]) { best = i; }
    }
    return best;
}
"#;

/// Hand-optimized HLS version: static buffers, bounded selection loop,
/// unrolled popcount, pipelined training scan.
pub const MANUAL: &str = r#"
#define TRAIN 16
int train_bits[TRAIN] = {
    15, 51, 85, 51, 240, 204, 170, 204,
    3855, 13107, 21845, 13107, 61680, 52428, 43690, 52428
};
int train_label[TRAIN] = {
    0, 1, 2, 1, 3, 4, 5, 4,
    6, 7, 8, 7, 9, 4, 5, 4
};

int popcount25(int x) {
    int count = 0;
    for (int i = 0; i < 25; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=5
        if (((x >> i) & 1) == 1) {
            count = count + 1;
        }
    }
    return count;
}

int kernel(int digit, int k) {
    if (k > 8) { k = 8; }
    if (k < 1) { k = 1; }
    int best_dist[8];
    int best_label[8];
#pragma HLS array_partition variable=best_dist complete
#pragma HLS array_partition variable=best_label complete
#pragma HLS array_partition variable=train_bits factor=8 dim=1
    for (int i = 0; i < 8; i++) {
#pragma HLS unroll factor=8
        best_dist[i] = 26;
        best_label[i] = 0;
    }
    for (int t = 0; t < TRAIN; t++) {
#pragma HLS pipeline II=2
        int d = popcount25(digit ^ train_bits[t]);
        int j = 0;
        while (j < k && best_dist[j] <= d) {
#pragma HLS loop_tripcount min=1 max=8
            j = j + 1;
        }
        if (j < k) {
            for (int m = k - 1; m > j; m = m - 1) {
#pragma HLS pipeline II=1
                best_dist[m] = best_dist[m - 1];
                best_label[m] = best_label[m - 1];
            }
            best_dist[j] = d;
            best_label[j] = train_label[t];
        }
    }
    int votes[10];
    for (int i = 0; i < 10; i++) {
#pragma HLS pipeline II=1
        votes[i] = 0;
    }
    for (int i = 0; i < k; i++) {
#pragma HLS pipeline II=1
        votes[best_label[i]] = votes[best_label[i]] + 1;
    }
    int best = 0;
    for (int i = 1; i < 10; i++) {
#pragma HLS pipeline II=1
        if (votes[i] > votes[best]) { best = i; }
    }
    return best;
}
"#;

/// Pre-existing tests (11 tests, 70% coverage in the paper).
pub fn existing_tests() -> Vec<Vec<ArgValue>> {
    (0..11)
        .map(|i| vec![ArgValue::Int((i * 997 + 13) % 33554432), ArgValue::Int(3)])
        .collect()
}

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P10",
        name: "digit recognition",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: existing_tests(),
        seed_inputs: vec![vec![ArgValue::Int(51), ArgValue::Int(3)]],
        paper: PaperRow {
            origin_loc: 117,
            manual_delta_loc: 61,
            hg_delta_loc: 35,
            origin_ms: 24.3,
            manual_ms: 10.5,
            hg_ms: 13.6,
            hr_works: false,
            improved: true,
            existing_test_count: Some(11),
            existing_coverage: Some(0.70),
            hg_tests: 133,
            hg_time_min: 67.0,
            hg_coverage: 1.0,
        },
    }
}
