//! P4 — image processing: smoothing plus two Sobel gradient passes over an
//! 8×8 tile.
//!
//! Two incompatibilities: the smoothed buffer feeds *two* simultaneous tasks
//! inside a `dataflow` region (the paper's post 595161 class, fixed by data
//! segmentation), and the smoothing helper uses a variable-length line
//! buffer (unknown size at compile time).

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
#define W 8
#define IMG 64

void smooth(int img[64], int out[64]) {
    int w = 8;
    int line[w];
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
            int acc = img[y * 8 + x] * 2;
            if (x > 0) { acc = acc + img[y * 8 + x - 1]; }
            if (x < 7) { acc = acc + img[y * 8 + x + 1]; }
            line[x] = acc / 4;
        }
        for (int x = 0; x < 8; x++) {
            out[y * 8 + x] = line[x];
        }
    }
}

void sobel_x(int img[64], int gx[64]) {
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
            int left = x > 0 ? img[y * 8 + x - 1] : img[y * 8 + x];
            int right = x < 7 ? img[y * 8 + x + 1] : img[y * 8 + x];
            gx[y * 8 + x] = right - left;
        }
    }
}

void sobel_y(int img[64], int gy[64]) {
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
            int up = y > 0 ? img[(y - 1) * 8 + x] : img[y * 8 + x];
            int down = y < 7 ? img[(y + 1) * 8 + x] : img[y * 8 + x];
            gy[y * 8 + x] = down - up;
        }
    }
}

void kernel(int img[64], int gx[64], int gy[64]) {
#pragma HLS dataflow
    int smoothed[64];
    smooth(img, smoothed);
    sobel_x(smoothed, gx);
    sobel_y(smoothed, gy);
}
"#;

/// A hand-optimized HLS version: segmented buffers, static line buffer,
/// pipelined inner loops.
pub const MANUAL: &str = r#"
#define W 8
#define IMG 64

void smooth(int img[64], int out[64]) {
    int line[8];
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
#pragma HLS pipeline II=1
            int acc = img[y * 8 + x] * 2;
            if (x > 0) { acc = acc + img[y * 8 + x - 1]; }
            if (x < 7) { acc = acc + img[y * 8 + x + 1]; }
            line[x] = acc / 4;
        }
        for (int x = 0; x < 8; x++) {
#pragma HLS pipeline II=1
            out[y * 8 + x] = line[x];
        }
    }
}

void sobel_x(int img[64], int gx[64]) {
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
#pragma HLS pipeline II=1
            int left = x > 0 ? img[y * 8 + x - 1] : img[y * 8 + x];
            int right = x < 7 ? img[y * 8 + x + 1] : img[y * 8 + x];
            gx[y * 8 + x] = right - left;
        }
    }
}

void sobel_y(int img[64], int gy[64]) {
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
#pragma HLS pipeline II=1
            int up = y > 0 ? img[(y - 1) * 8 + x] : img[y * 8 + x];
            int down = y < 7 ? img[(y + 1) * 8 + x] : img[y * 8 + x];
            gy[y * 8 + x] = down - up;
        }
    }
}

void kernel(int img[64], int gx[64], int gy[64]) {
#pragma HLS dataflow
    int smoothed[64];
    int smoothed_b[64];
    smooth(img, smoothed);
    for (int i = 0; i < 64; i++) {
        smoothed_b[i] = smoothed[i];
    }
    sobel_x(smoothed, gx);
    sobel_y(smoothed_b, gy);
}
"#;

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    let img: Vec<i128> = (0..64).map(|i| (i * 5 % 97) as i128).collect();
    Subject {
        id: "P4",
        name: "image processing",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: Vec::new(),
        seed_inputs: vec![vec![
            ArgValue::IntArray(img),
            ArgValue::IntArray(vec![0; 64]),
            ArgValue::IntArray(vec![0; 64]),
        ]],
        paper: PaperRow {
            origin_loc: 285,
            manual_delta_loc: 136,
            hg_delta_loc: 32,
            origin_ms: 8.4,
            manual_ms: 2.01,
            hg_ms: 3.28,
            hr_works: false,
            improved: true,
            existing_test_count: None,
            existing_coverage: None,
            hg_tests: 47,
            hg_time_min: 55.0,
            hg_coverage: 1.0,
        },
    }
}
