//! P7 — bubble sort with an over-eager unroll inside a dataflow region.
//!
//! The paper's post 721719 class: `unroll factor=50` on a data-dependent
//! loop interacts with a pre-existing `dataflow` pragma and fails
//! pre-synthesis (`HLS 200-70`). Fixed by making the trip bound explicit
//! (`loop_tripcount`), lowering the factor, or dropping the unroll.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
void kernel(int a[24]) {
#pragma HLS dataflow
    int swapped = 1;
    while (swapped == 1) {
#pragma HLS unroll factor=50
        swapped = 0;
        for (int i = 0; i < 23; i++) {
            if (a[i] > a[i + 1]) {
                int t = a[i];
                a[i] = a[i + 1];
                a[i + 1] = t;
                swapped = 1;
            }
        }
    }
}
"#;

/// Hand-optimized HLS version: fixed-trip outer loop (bubble sort is done
/// after N-1 passes), pipelined inner compare-swap.
pub const MANUAL: &str = r#"
void kernel(int a[24]) {
    for (int pass = 0; pass < 23; pass++) {
        for (int i = 0; i < 23; i++) {
#pragma HLS pipeline II=1
            if (a[i] > a[i + 1]) {
                int t = a[i];
                a[i] = a[i + 1];
                a[i + 1] = t;
            }
        }
    }
}
"#;

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P7",
        name: "bubble sort",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: Vec::new(),
        seed_inputs: vec![vec![ArgValue::IntArray(
            (0..24).map(|i| ((i * 17 + 5) % 50) as i128).collect(),
        )]],
        paper: PaperRow {
            origin_loc: 50,
            manual_delta_loc: 45,
            hg_delta_loc: 25,
            origin_ms: 3.6,
            manual_ms: 2.31,
            hg_ms: 2.59,
            hr_works: false,
            improved: true,
            existing_test_count: None,
            existing_coverage: None,
            hg_tests: 399,
            hg_time_min: 35.0,
            hg_coverage: 1.0,
        },
    }
}
