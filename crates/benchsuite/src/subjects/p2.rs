//! P2 — arithmetic computation: Taylor-series exponential.
//!
//! A `long double` accumulator loop (the unsupported-data-type class); the
//! loop pipelines after repair, so the FPGA version wins.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
#define TERMS 24
float kernel(float x0) {
    long double x = x0;
    long double sum = 1.0L;
    long double term = 1.0L;
    for (int i = 1; i < TERMS; i++) {
        term = term * x / i;
        sum = sum + term;
    }
    return (float)sum;
}
"#;

/// Hand-optimized HLS version: custom floats plus an explicitly pipelined
/// loop.
pub const MANUAL: &str = r#"
#define TERMS 24
float kernel(float x0) {
    fpga_float<8,52> x = x0;
    fpga_float<8,52> sum = 1.0;
    fpga_float<8,52> term = 1.0;
    for (int i = 1; i < TERMS; i++) {
#pragma HLS pipeline II=1
        term = term * x / i;
        sum = sum + term;
    }
    return (float)sum;
}
"#;

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P2",
        name: "arithmetic computation",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: Vec::new(),
        seed_inputs: vec![vec![ArgValue::Float(0.5)]],
        paper: PaperRow {
            origin_loc: 24,
            manual_delta_loc: 8,
            hg_delta_loc: 9,
            origin_ms: 0.96,
            manual_ms: 0.45,
            hg_ms: 0.53,
            hr_works: false,
            improved: true,
            existing_test_count: None,
            existing_coverage: None,
            hg_tests: 6930,
            hg_time_min: 50.0,
            hg_coverage: 1.0,
        },
    }
}
