//! P5 — graph traversal: build a binary search tree with `malloc`, then
//! recursively traverse it accumulating a weighted sum.
//!
//! The richest error mix of the micro-benchmarks: dynamic allocation,
//! pointer parameters in helpers, recursion, *and* a `long double`
//! accumulator. Repairing it takes the longest edit chain (the paper
//! reports 438 lines of edits, the largest of the ten) — backing array +
//! index rewrite + stack machine + type transformation.

use crate::{PaperRow, Subject};
use minic_exec::ArgValue;

/// The original C program.
pub const SOURCE: &str = r#"
struct Node {
    int val;
    struct Node* left;
    struct Node* right;
};

long double gt_total;

void insert_node(struct Node* root, int v) {
    struct Node* cur = root;
    while (1) {
        if (v < cur->val) {
            if (cur->left == 0) {
                struct Node* fresh = (struct Node*)malloc(sizeof(struct Node));
                fresh->val = v;
                fresh->left = 0;
                fresh->right = 0;
                cur->left = fresh;
                return;
            }
            cur = cur->left;
        } else {
            if (cur->right == 0) {
                struct Node* fresh = (struct Node*)malloc(sizeof(struct Node));
                fresh->val = v;
                fresh->left = 0;
                fresh->right = 0;
                cur->right = fresh;
                return;
            }
            cur = cur->right;
        }
    }
}

void traverse(struct Node* curr) {
    if (curr == 0) { return; }
    traverse(curr->left);
    gt_total = gt_total + 1.5L * curr->val;
    traverse(curr->right);
}

float kernel(int vals[16], int n) {
    if (n > 16) { n = 16; }
    if (n < 1) { n = 1; }
    struct Node* root = (struct Node*)malloc(sizeof(struct Node));
    root->val = vals[0];
    root->left = 0;
    root->right = 0;
    for (int i = 1; i < n; i++) {
        insert_node(root, vals[i]);
    }
    gt_total = 0.0L;
    traverse(root);
    return (float)gt_total;
}
"#;

/// A hand-optimized HLS version: index-based tree in static arrays, an
/// explicit traversal stack, custom float accumulator, pipelined loops.
pub const MANUAL: &str = r#"
#define POOL 64
int nd_val[POOL];
int nd_left[POOL];
int nd_right[POOL];
int nd_next;
fpga_float<8,52> gt_total;

int alloc_node(int v) {
    int id = nd_next;
    nd_next = nd_next + 1;
    nd_val[id] = v;
    nd_left[id] = 0;
    nd_right[id] = 0;
    return id;
}

void insert_node(int root, int v) {
    int cur = root;
    while (1) {
#pragma HLS pipeline II=1
        if (v < nd_val[cur]) {
            if (nd_left[cur] == 0) {
                nd_left[cur] = alloc_node(v);
                return;
            }
            cur = nd_left[cur];
        } else {
            if (nd_right[cur] == 0) {
                nd_right[cur] = alloc_node(v);
                return;
            }
            cur = nd_right[cur];
        }
    }
}

void traverse(int root) {
    int stack[POOL];
#pragma HLS array_partition variable=nd_left factor=8 dim=1
#pragma HLS array_partition variable=nd_val factor=8 dim=1
    int sp = 0;
    int cur = root;
    while (cur != 0 || sp > 0) {
#pragma HLS pipeline II=1
        while (cur != 0) {
#pragma HLS pipeline II=1
            stack[sp] = cur;
            sp = sp + 1;
            cur = nd_left[cur];
        }
        sp = sp - 1;
        cur = stack[sp];
        gt_total = gt_total + 1.5 * nd_val[cur];
        cur = nd_right[cur];
    }
}

float kernel(int vals[16], int n) {
    if (n > 16) { n = 16; }
    if (n < 1) { n = 1; }
    nd_next = 1;
    int root = alloc_node(vals[0]);
    for (int i = 1; i < n; i++) {
#pragma HLS pipeline II=2
        insert_node(root, vals[i]);
    }
    gt_total = 0.0;
    traverse(root);
    return (float)gt_total;
}
"#;

/// Pre-existing tests (10 tests, low coverage): small, already-balanced
/// value sets.
pub fn existing_tests() -> Vec<Vec<ArgValue>> {
    (0..10)
        .map(|k| {
            let vals: Vec<i128> = (0..16).map(|i| ((i * 11 + k) % 30) as i128).collect();
            vec![ArgValue::IntArray(vals), ArgValue::Int(4)]
        })
        .collect()
}

/// Builds the subject descriptor.
pub fn subject() -> Subject {
    Subject {
        id: "P5",
        name: "graph traversal",
        kernel: "kernel",
        source: SOURCE,
        manual_source: Some(MANUAL),
        existing_tests: existing_tests(),
        seed_inputs: vec![vec![
            ArgValue::IntArray((0..16).map(|i| (i * 3 % 23) as i128).collect()),
            ArgValue::Int(12),
        ]],
        paper: PaperRow {
            origin_loc: 85,
            manual_delta_loc: 144,
            hg_delta_loc: 438,
            origin_ms: 1.68,
            manual_ms: 0.91,
            hg_ms: 1.17,
            hr_works: false,
            improved: true,
            existing_test_count: Some(10),
            existing_coverage: Some(0.40),
            hg_tests: 38,
            hg_time_min: 41.0,
            hg_coverage: 1.0,
        },
    }
}
