//! The evaluation subjects of the HeteroGen reproduction.
//!
//! Ten programs P1–P10 mirroring the paper's Table 3 benchmark suite: eight
//! micro-benchmarks (forum-derived drafts and HeteroRefactor subjects) plus
//! two larger Rosetta-style applications. Each subject carries its original
//! source in the minic dialect (with the same incompatibility classes as
//! the paper's subject), an expert-written manual HLS version (Table 5's
//! "Manual" column), any pre-existing tests (Table 4), fuzzing seeds, and
//! the paper's reference numbers for shape comparison.
//!
//! # Examples
//!
//! ```
//! let subjects = benchsuite::subjects();
//! assert_eq!(subjects.len(), 10);
//! let p3 = benchsuite::subject("P3").unwrap();
//! assert!(minic::parse(p3.source).is_ok());
//! ```

pub mod forum;
pub mod subjects;

use minic_exec::ArgValue;

/// Reference numbers from the paper (Tables 3–5) for shape comparison in
/// EXPERIMENTS.md. Absolute values are not reproduction targets; signs and
/// orderings are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Original program size (paper Table 5 "Origin LOC").
    pub origin_loc: usize,
    /// Lines added by the manual port (Table 5 "ΔLOC Manual").
    pub manual_delta_loc: usize,
    /// Lines added by HeteroGen (Table 5 "ΔLOC HG").
    pub hg_delta_loc: usize,
    /// Original CPU runtime in ms (Table 5).
    pub origin_ms: f64,
    /// Manual FPGA runtime in ms (Table 5).
    pub manual_ms: f64,
    /// HeteroGen FPGA runtime in ms (Table 5).
    pub hg_ms: f64,
    /// Whether HeteroRefactor transpiles this subject (Table 5: P3, P8).
    pub hr_works: bool,
    /// Whether HeteroGen's version beat the CPU original (Table 3).
    pub improved: bool,
    /// Pre-existing test count (Table 4), if any.
    pub existing_test_count: Option<usize>,
    /// Pre-existing branch coverage (Table 4), if any.
    pub existing_coverage: Option<f64>,
    /// Tests HeteroGen generated (Table 4).
    pub hg_tests: usize,
    /// Test-generation time in minutes (Table 4).
    pub hg_time_min: f64,
    /// Branch coverage of the generated tests (Table 4).
    pub hg_coverage: f64,
}

/// One evaluation subject.
#[derive(Debug, Clone)]
pub struct Subject {
    /// Paper id, `"P1"`–`"P10"`.
    pub id: &'static str,
    /// Human-readable name (Table 3).
    pub name: &'static str,
    /// Kernel (top) function name.
    pub kernel: &'static str,
    /// Original source in the minic dialect.
    pub source: &'static str,
    /// Expert-written HLS version, when available.
    pub manual_source: Option<&'static str>,
    /// Pre-existing tests (empty when the paper reports N/A).
    pub existing_tests: Vec<Vec<ArgValue>>,
    /// Seed inputs for the fuzzer (stand-in for host-run capture).
    pub seed_inputs: Vec<Vec<ArgValue>>,
    /// Paper reference numbers.
    pub paper: PaperRow,
}

impl Subject {
    /// Parses the original source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source does not parse — a bug in the suite,
    /// covered by tests.
    pub fn parse(&self) -> minic::Program {
        minic::parse(self.source)
            .unwrap_or_else(|e| panic!("{}: original source does not parse: {e}", self.id))
    }

    /// Parses the manual HLS version, when present.
    pub fn parse_manual(&self) -> Option<minic::Program> {
        self.manual_source.map(|s| {
            minic::parse(s)
                .unwrap_or_else(|e| panic!("{}: manual source does not parse: {e}", self.id))
        })
    }
}

/// All ten subjects in paper order.
pub fn subjects() -> Vec<Subject> {
    vec![
        subjects::p1::subject(),
        subjects::p2::subject(),
        subjects::p3::subject(),
        subjects::p4::subject(),
        subjects::p5::subject(),
        subjects::p6::subject(),
        subjects::p7::subject(),
        subjects::p8::subject(),
        subjects::p9::subject(),
        subjects::p10::subject(),
    ]
}

/// Looks up a subject by paper id (`"P1"`–`"P10"`).
pub fn subject(id: &str) -> Option<Subject> {
    subjects().into_iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic_exec::{Machine, MachineConfig};

    #[test]
    fn all_subjects_parse() {
        for s in subjects() {
            let p = s.parse();
            assert!(p.function(s.kernel).is_some(), "{}: kernel missing", s.id);
        }
    }

    #[test]
    fn all_manual_versions_parse_and_are_synthesizable() {
        for s in subjects() {
            if let Some(m) = s.parse_manual() {
                let diags = hls_sim::check_program(&m);
                assert!(
                    diags.is_empty(),
                    "{}: manual version not synthesizable: {diags:?}",
                    s.id
                );
            }
        }
    }

    #[test]
    fn all_originals_fail_synthesizability() {
        for s in subjects() {
            let p = s.parse();
            let diags = hls_sim::check_program(&p);
            assert!(
                !diags.is_empty(),
                "{}: original unexpectedly synthesizable",
                s.id
            );
        }
    }

    #[test]
    fn all_seed_inputs_execute_on_cpu() {
        for s in subjects() {
            let p = s.parse();
            for (k, seed) in s.seed_inputs.iter().enumerate() {
                let mut m = Machine::new(&p, MachineConfig::cpu()).unwrap();
                let out = m.run_kernel(s.kernel, seed);
                assert!(
                    !out.trapped,
                    "{} seed {k} trapped: {:?}",
                    s.id, out.trap_reason
                );
            }
        }
    }

    #[test]
    fn all_existing_tests_execute_on_cpu() {
        for s in subjects() {
            let p = s.parse();
            for (k, t) in s.existing_tests.iter().enumerate() {
                let mut m = Machine::new(&p, MachineConfig::cpu()).unwrap();
                let out = m.run_kernel(s.kernel, t);
                assert!(
                    !out.trapped,
                    "{} existing test {k} trapped: {:?}",
                    s.id, out.trap_reason
                );
            }
        }
    }

    #[test]
    fn manual_versions_preserve_behaviour_on_seeds() {
        for s in subjects() {
            let Some(manual) = s.parse_manual() else {
                continue;
            };
            let orig = s.parse();
            for seed in &s.seed_inputs {
                let mut m1 = Machine::new(&orig, MachineConfig::cpu()).unwrap();
                let a = m1.run_kernel(s.kernel, seed);
                let mut m2 = Machine::new(&manual, MachineConfig::fpga()).unwrap();
                let b = m2.run_kernel(s.kernel, seed);
                assert!(
                    a.behaviour_eq(&b),
                    "{}: manual diverges on seed\nCPU: {a:?}\nFPGA: {b:?}",
                    s.id
                );
            }
        }
    }

    #[test]
    fn error_categories_cover_all_six() {
        use hls_sim::ErrorCategory;
        let mut seen = std::collections::BTreeSet::new();
        for s in subjects() {
            for d in hls_sim::check_program(&s.parse()) {
                seen.insert(d.category);
            }
        }
        for c in ErrorCategory::ALL {
            assert!(seen.contains(&c), "no subject exercises {c}");
        }
    }

    #[test]
    fn subject_lookup() {
        assert_eq!(subject("P7").unwrap().name, "bubble sort");
        assert!(subject("P11").is_none());
    }

    #[test]
    fn table4_subjects_with_existing_tests_match_paper() {
        for s in subjects() {
            match s.paper.existing_test_count {
                Some(n) => assert_eq!(s.existing_tests.len(), n, "{}", s.id),
                None => assert!(s.existing_tests.is_empty(), "{}", s.id),
            }
        }
    }
}
