//! Structured event tracing and metrics for the HeteroGen pipeline.
//!
//! The pipeline's interesting behaviour is *internal*: compile invocations
//! avoided by the style checker, simulated minutes per phase, candidates
//! attempted versus rejected. This crate gives every stage a typed event
//! stream to report through — a [`TraceSink`] trait plus an [`Event`] enum
//! with simulated-clock timestamps — without committing any stage to a
//! particular consumer.
//!
//! Three sinks ship with the crate:
//!
//! * [`NullSink`] — the default; [`TraceSink::enabled`] returns `false`, so
//!   instrumented code skips event construction entirely (zero cost when
//!   tracing is off);
//! * [`MetricsSink`] — in-memory counters and histograms, queryable after a
//!   run;
//! * [`JsonlSink`] — one JSON object per event, for offline analysis and
//!   the `reproduce -- trace <subject>` flamegraph summary.
//!
//! # The merge-phase emission rule
//!
//! The repair search and the fuzzer evaluate candidates on worker pools but
//! merge results on the caller thread, in a deterministic order. Events
//! MUST be emitted from that merge phase only — never from worker threads —
//! so the event stream is bit-identical at any thread count. The
//! workspace's `tests/determinism.rs` pins this by comparing raw JSONL
//! bytes across thread counts.
//!
//! # Examples
//!
//! ```
//! use heterogen_trace::{Event, MetricsSink, TraceSink, Verdict};
//!
//! let sink = MetricsSink::new();
//! sink.emit(&Event::PhaseEnter { phase: "repair".into(), at_min: 0.0 });
//! sink.emit(&Event::CandidateEvaluated {
//!     kind: "type_trans".into(),
//!     fingerprint: 0xfeed,
//!     verdict: Verdict::Admitted,
//!     sim_cost_min: 2.5,
//!     at_min: 2.5,
//! });
//! sink.emit(&Event::PhaseExit { phase: "repair".into(), at_min: 2.5, elapsed_min: 2.5 });
//! assert_eq!(sink.counter("candidate.admitted"), 1);
//! assert_eq!(sink.histogram("phase.repair.min").unwrap().count(), 1);
//! ```

use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// How one candidate attempt ended (the merge phase's classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The edit did not apply structurally (free rejection).
    Inapplicable,
    /// The resulting program was already seen (fingerprint dedup).
    Duplicate,
    /// The cheap style checker rejected it before full compilation.
    StyleRejected,
    /// Compiled, but with strictly more errors than its parent.
    Regressed,
    /// Admitted to the search frontier.
    Admitted,
    /// The evaluation panicked and was isolated (`catch_unwind`); the
    /// candidate is dropped without aborting its batch.
    Crashed,
}

impl Verdict {
    /// Stable lowercase name, used as a metrics-counter suffix.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Inapplicable => "inapplicable",
            Verdict::Duplicate => "duplicate",
            Verdict::StyleRejected => "style_rejected",
            Verdict::Regressed => "regressed",
            Verdict::Admitted => "admitted",
            Verdict::Crashed => "crashed",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One parameterized edit inside an [`Event::RepairScript`]: the edit-family
/// name plus the minimal anchor context (localization site, touched symbol,
/// numeric parameter, extra label) the repair layer recorded for it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEdit {
    /// Edit-family name (same vocabulary as [`Event::EditApplied`]).
    pub kind: String,
    /// Localization site (function or struct name), if any.
    pub site: Option<String>,
    /// Touched symbol (variable, parameter, method), if any.
    pub symbol: Option<String>,
    /// Numeric parameter (size, capacity, factor, loop index), if any.
    pub value: Option<i128>,
    /// Extra discriminating label (pragma family, target type), if any.
    pub label: Option<String>,
}

impl Serialize for TraceEdit {
    fn to_json_value(&self) -> Value {
        fn opt_str(v: &Option<String>) -> Value {
            v.as_ref().map_or(Value::Null, |s| Value::Str(s.clone()))
        }
        Value::Object(vec![
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("site".to_string(), opt_str(&self.site)),
            ("symbol".to_string(), opt_str(&self.symbol)),
            (
                "value".to_string(),
                self.value.map_or(Value::Null, Value::Int),
            ),
            ("label".to_string(), opt_str(&self.label)),
        ])
    }
}

/// One structured pipeline event.
///
/// `at_min` fields are *simulated minutes on the emitting phase's clock*
/// (the fuzzer's campaign clock, the repair search's budget clock) — not
/// wall-clock time, so traces are deterministic and machine-independent.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A pipeline phase started.
    PhaseEnter {
        /// Phase name (`"testgen"`, `"repair"`, …).
        phase: String,
        /// Simulated minutes already on the pipeline clock.
        at_min: f64,
    },
    /// A pipeline phase finished.
    PhaseExit {
        /// Phase name, matching the corresponding [`Event::PhaseEnter`].
        phase: String,
        /// Simulated minutes on the pipeline clock at exit.
        at_min: f64,
        /// Simulated minutes the phase consumed.
        elapsed_min: f64,
    },
    /// One havoc round of the fuzzing campaign completed.
    FuzzRoundEnd {
        /// Round index (0-based).
        round: u64,
        /// Total inputs executed so far.
        executed: u64,
        /// Corpus size so far (coverage-increasing inputs).
        corpus: u64,
        /// Whether this round found new coverage.
        new_coverage: bool,
        /// Simulated minutes on the campaign clock.
        at_min: f64,
    },
    /// One repair-search attempt was merged (every attempt gets exactly one
    /// of these, in merge order).
    CandidateEvaluated {
        /// Edit-family name that produced the candidate.
        kind: String,
        /// Structural fingerprint of the candidate program (0 when the edit
        /// was inapplicable and no program exists).
        fingerprint: u64,
        /// How the attempt ended.
        verdict: Verdict,
        /// Simulated minutes billed for this attempt (style check + full
        /// compile; 0 for free rejections).
        sim_cost_min: f64,
        /// Simulated minutes on the search clock after billing.
        at_min: f64,
    },
    /// The style checker rejected a candidate, avoiding a full compile.
    StyleReject {
        /// Structural fingerprint of the rejected candidate.
        fingerprint: u64,
        /// Simulated minutes on the search clock.
        at_min: f64,
    },
    /// A full HLS compilation was billed.
    FullCompile {
        /// Structural fingerprint of the compiled candidate.
        fingerprint: u64,
        /// Pretty-printed line count (drives the cost model).
        loc: u64,
        /// Simulated minutes billed for the compile.
        cost_min: f64,
        /// Simulated minutes on the search clock after billing.
        at_min: f64,
    },
    /// An edit was accepted onto a live search path (admitted to the
    /// frontier, or chained onto the performance-exploration base).
    EditApplied {
        /// Edit-family name.
        kind: String,
        /// Simulated minutes on the search clock.
        at_min: f64,
    },
    /// The winning repair script of a search: the ordered, parameterized
    /// edits along the successful path, with their anchor context. Emitted
    /// once per successful mined-tier search, so JSONL archives carry the
    /// whole script, not only the per-edit [`Event::EditApplied`] stream.
    RepairScript {
        /// Ordered edits of the winning script.
        edits: Vec<TraceEdit>,
        /// Simulated minutes on the search clock at emission.
        at_min: f64,
    },
    /// A candidate was differentially tested against the reference.
    DiffEvaluated {
        /// Tests compared.
        tests: u64,
        /// Fraction with identical behaviour.
        pass_ratio: f64,
        /// Mean FPGA latency over the tests (ms).
        fpga_latency_ms: f64,
    },
    /// The fault injector sabotaged a toolchain invocation.
    FaultInjected {
        /// Fault site name (`"hls_check"`, `"hls_sim"`, `"exec"`).
        site: String,
        /// Fault kind name (`"transient"`, `"permanent"`, `"poison"`,
        /// `"fuel_spike"`).
        fault: String,
        /// Stable evaluation key the fault was drawn for.
        fingerprint: u64,
        /// Attempt number the fault struck (0 = first try).
        attempt: u64,
        /// Simulated minutes on the emitting phase's clock.
        at_min: f64,
    },
    /// A transient fault was scheduled for a deterministic backoff retry.
    RetryScheduled {
        /// Fault site name.
        site: String,
        /// Stable evaluation key being retried.
        fingerprint: u64,
        /// Retry number (1 = first retry).
        attempt: u64,
        /// Simulated-minute backoff before the retry (resilience clock).
        delay_min: f64,
        /// Simulated minutes on the emitting phase's clock.
        at_min: f64,
    },
    /// A candidate evaluation panicked and was isolated; the batch
    /// continued without it.
    CandidateCrashed {
        /// Edit-family name that produced the candidate.
        kind: String,
        /// Structural fingerprint of the crashed candidate.
        fingerprint: u64,
        /// Simulated minutes on the search clock.
        at_min: f64,
    },
    /// A toolchain backend performed one real invocation (a compile or a
    /// co-simulation that reached the backend — cache hits and faulted
    /// attempts never get one). Emitted by the `Traced` middleware layer of
    /// `heterogen-toolchain`, exactly once per logical invocation.
    ToolchainInvoked {
        /// Backend name (from its `BackendInfo`).
        backend: String,
        /// Operation name (`"compile"`, `"simulate"`).
        op: String,
        /// Stable evaluation key of the invocation.
        fingerprint: u64,
    },
    /// A pipeline phase finished degraded: it returned a best-effort result
    /// after exhausting a budget or hitting a permanent fault.
    PhaseDegraded {
        /// Phase name (`"testgen"`, `"repair"`).
        phase: String,
        /// Stable degradation-reason name.
        reason: String,
        /// Simulated minutes on the pipeline clock.
        at_min: f64,
    },
}

impl Event {
    /// Stable event-type name (the `"event"` field of the JSONL encoding
    /// and the metrics-counter key).
    pub fn name(&self) -> &'static str {
        match self {
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::FuzzRoundEnd { .. } => "fuzz_round_end",
            Event::CandidateEvaluated { .. } => "candidate_evaluated",
            Event::StyleReject { .. } => "style_reject",
            Event::FullCompile { .. } => "full_compile",
            Event::EditApplied { .. } => "edit_applied",
            Event::RepairScript { .. } => "repair_script",
            Event::DiffEvaluated { .. } => "diff_evaluated",
            Event::FaultInjected { .. } => "fault_injected",
            Event::RetryScheduled { .. } => "retry_scheduled",
            Event::CandidateCrashed { .. } => "candidate_crashed",
            Event::ToolchainInvoked { .. } => "toolchain_invoked",
            Event::PhaseDegraded { .. } => "phase_degraded",
        }
    }
}

impl Serialize for Event {
    fn to_json_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("event".into(), Value::Str(self.name().into()))];
        let mut push = |name: &str, v: Value| fields.push((name.into(), v));
        match self {
            Event::PhaseEnter { phase, at_min } => {
                push("phase", Value::Str(phase.clone()));
                push("at_min", Value::Float(*at_min));
            }
            Event::PhaseExit {
                phase,
                at_min,
                elapsed_min,
            } => {
                push("phase", Value::Str(phase.clone()));
                push("at_min", Value::Float(*at_min));
                push("elapsed_min", Value::Float(*elapsed_min));
            }
            Event::FuzzRoundEnd {
                round,
                executed,
                corpus,
                new_coverage,
                at_min,
            } => {
                push("round", Value::Int(*round as i128));
                push("executed", Value::Int(*executed as i128));
                push("corpus", Value::Int(*corpus as i128));
                push("new_coverage", Value::Bool(*new_coverage));
                push("at_min", Value::Float(*at_min));
            }
            Event::CandidateEvaluated {
                kind,
                fingerprint,
                verdict,
                sim_cost_min,
                at_min,
            } => {
                push("kind", Value::Str(kind.clone()));
                push("fingerprint", Value::Str(format!("{fingerprint:016x}")));
                push("verdict", Value::Str(verdict.as_str().into()));
                push("sim_cost_min", Value::Float(*sim_cost_min));
                push("at_min", Value::Float(*at_min));
            }
            Event::StyleReject {
                fingerprint,
                at_min,
            } => {
                push("fingerprint", Value::Str(format!("{fingerprint:016x}")));
                push("at_min", Value::Float(*at_min));
            }
            Event::FullCompile {
                fingerprint,
                loc,
                cost_min,
                at_min,
            } => {
                push("fingerprint", Value::Str(format!("{fingerprint:016x}")));
                push("loc", Value::Int(*loc as i128));
                push("cost_min", Value::Float(*cost_min));
                push("at_min", Value::Float(*at_min));
            }
            Event::EditApplied { kind, at_min } => {
                push("kind", Value::Str(kind.clone()));
                push("at_min", Value::Float(*at_min));
            }
            Event::RepairScript { edits, at_min } => {
                push(
                    "edits",
                    Value::Array(edits.iter().map(Serialize::to_json_value).collect()),
                );
                push("at_min", Value::Float(*at_min));
            }
            Event::DiffEvaluated {
                tests,
                pass_ratio,
                fpga_latency_ms,
            } => {
                push("tests", Value::Int(*tests as i128));
                push("pass_ratio", Value::Float(*pass_ratio));
                push("fpga_latency_ms", Value::Float(*fpga_latency_ms));
            }
            Event::FaultInjected {
                site,
                fault,
                fingerprint,
                attempt,
                at_min,
            } => {
                push("site", Value::Str(site.clone()));
                push("fault", Value::Str(fault.clone()));
                push("fingerprint", Value::Str(format!("{fingerprint:016x}")));
                push("attempt", Value::Int(*attempt as i128));
                push("at_min", Value::Float(*at_min));
            }
            Event::RetryScheduled {
                site,
                fingerprint,
                attempt,
                delay_min,
                at_min,
            } => {
                push("site", Value::Str(site.clone()));
                push("fingerprint", Value::Str(format!("{fingerprint:016x}")));
                push("attempt", Value::Int(*attempt as i128));
                push("delay_min", Value::Float(*delay_min));
                push("at_min", Value::Float(*at_min));
            }
            Event::CandidateCrashed {
                kind,
                fingerprint,
                at_min,
            } => {
                push("kind", Value::Str(kind.clone()));
                push("fingerprint", Value::Str(format!("{fingerprint:016x}")));
                push("at_min", Value::Float(*at_min));
            }
            Event::ToolchainInvoked {
                backend,
                op,
                fingerprint,
            } => {
                push("backend", Value::Str(backend.clone()));
                push("op", Value::Str(op.clone()));
                push("fingerprint", Value::Str(format!("{fingerprint:016x}")));
            }
            Event::PhaseDegraded {
                phase,
                reason,
                at_min,
            } => {
                push("phase", Value::Str(phase.clone()));
                push("reason", Value::Str(reason.clone()));
                push("at_min", Value::Float(*at_min));
            }
        }
        Value::Object(fields)
    }
}

/// A consumer of pipeline events.
///
/// `emit` takes `&self` so sinks can be shared (`Arc<dyn TraceSink>`);
/// stateful sinks use interior mutability. Events arrive from the merge
/// phase of the instrumented loops — one thread at a time — but sinks must
/// still be `Send + Sync` because the pipeline objects holding them are.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);

    /// Whether events are observed at all. Instrumented code gates event
    /// *construction* on this, so a disabled sink costs one virtual call
    /// per would-be event and nothing else.
    fn enabled(&self) -> bool {
        true
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &T {
    fn emit(&self, event: &Event) {
        (**self).emit(event)
    }
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

impl<T: TraceSink + ?Sized> TraceSink for Arc<T> {
    fn emit(&self, event: &Event) {
        (**self).emit(event)
    }
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// The default sink: drops everything and reports itself disabled, so
/// instrumented code never constructs event payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &Event) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Running aggregate of one histogram-tracked quantity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Phase → enter timestamp, for computing `phase.<name>.min` spans.
    open_phases: BTreeMap<String, f64>,
}

/// In-memory counters and histograms, queryable after a run.
///
/// Counter keys:
///
/// * one per event-type name (`"candidate_evaluated"`, `"full_compile"`, …);
/// * `"candidate.<verdict>"` per [`Verdict`] (`"candidate.admitted"`, …);
/// * `"edit_applied.<kind>"` per edit family.
///
/// Histogram keys: `"full_compile.cost_min"`, `"candidate.sim_cost_min"`,
/// `"diff.pass_ratio"`, `"diff.fpga_latency_ms"`, and `"phase.<name>.min"`
/// for every completed phase span.
#[derive(Debug, Default)]
pub struct MetricsSink {
    inner: Mutex<MetricsInner>,
}

impl MetricsSink {
    /// Creates an empty metrics sink.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// The value of one counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// One histogram's aggregate, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().unwrap().histograms.get(name).copied()
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.lock().unwrap().counters.clone()
    }

    /// All histograms, sorted by key.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.inner.lock().unwrap().histograms.clone()
    }
}

impl TraceSink for MetricsSink {
    fn emit(&self, event: &Event) {
        let mut m = self.inner.lock().unwrap();
        *m.counters.entry(event.name().to_string()).or_insert(0) += 1;
        match event {
            Event::PhaseEnter { phase, at_min } => {
                m.open_phases.insert(phase.clone(), *at_min);
            }
            Event::PhaseExit {
                phase,
                at_min,
                elapsed_min,
            } => {
                // Prefer the emitter's elapsed figure; fall back to the
                // span between enter and exit timestamps.
                let span = if *elapsed_min > 0.0 {
                    *elapsed_min
                } else {
                    m.open_phases
                        .get(phase)
                        .map(|enter| (at_min - enter).max(0.0))
                        .unwrap_or(0.0)
                };
                m.open_phases.remove(phase);
                m.histograms
                    .entry(format!("phase.{phase}.min"))
                    .or_default()
                    .record(span);
            }
            Event::CandidateEvaluated {
                verdict,
                sim_cost_min,
                ..
            } => {
                *m.counters
                    .entry(format!("candidate.{}", verdict.as_str()))
                    .or_insert(0) += 1;
                m.histograms
                    .entry("candidate.sim_cost_min".to_string())
                    .or_default()
                    .record(*sim_cost_min);
            }
            Event::FullCompile { cost_min, .. } => {
                m.histograms
                    .entry("full_compile.cost_min".to_string())
                    .or_default()
                    .record(*cost_min);
            }
            Event::EditApplied { kind, .. } => {
                *m.counters
                    .entry(format!("edit_applied.{kind}"))
                    .or_insert(0) += 1;
            }
            Event::RepairScript { edits, .. } => {
                m.histograms
                    .entry("repair_script.edits".to_string())
                    .or_default()
                    .record(edits.len() as f64);
            }
            Event::DiffEvaluated {
                pass_ratio,
                fpga_latency_ms,
                ..
            } => {
                m.histograms
                    .entry("diff.pass_ratio".to_string())
                    .or_default()
                    .record(*pass_ratio);
                m.histograms
                    .entry("diff.fpga_latency_ms".to_string())
                    .or_default()
                    .record(*fpga_latency_ms);
            }
            Event::FaultInjected { site, .. } => {
                *m.counters.entry(format!("fault.{site}")).or_insert(0) += 1;
            }
            Event::RetryScheduled { delay_min, .. } => {
                m.histograms
                    .entry("retry.delay_min".to_string())
                    .or_default()
                    .record(*delay_min);
            }
            Event::ToolchainInvoked { op, .. } => {
                *m.counters.entry(format!("toolchain.{op}")).or_insert(0) += 1;
            }
            Event::PhaseDegraded { phase, .. } => {
                *m.counters.entry(format!("degraded.{phase}")).or_insert(0) += 1;
            }
            Event::FuzzRoundEnd { .. }
            | Event::StyleReject { .. }
            | Event::CandidateCrashed { .. } => {}
        }
    }
}

/// Version of the serialized wire format: the JSONL trace stream and the
/// pipeline report JSON. Bump when an event or report field changes shape;
/// consumers reject streams whose version they do not understand.
pub const SCHEMA_VERSION: u32 = 1;

/// The header line prepended to every rendered JSONL stream.
pub fn schema_header() -> String {
    format!("{{\"event\":\"schema\",\"schema_version\":{SCHEMA_VERSION}}}")
}

/// Renders each event as one JSON object per line, in emission order.
///
/// The buffer accumulates in memory; [`JsonlSink::contents`] returns the
/// stream for writing to disk or byte-for-byte comparison (the determinism
/// tests compare exactly these bytes across thread counts). The rendered
/// stream opens with a [`schema_header`] line carrying [`SCHEMA_VERSION`];
/// [`JsonlSink::events`] counts only real events, never the header.
#[derive(Debug, Default)]
pub struct JsonlSink {
    buf: Mutex<String>,
}

impl JsonlSink {
    /// Creates an empty in-memory JSONL sink.
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// The accumulated JSONL stream: a schema header line, then one event
    /// per line.
    pub fn contents(&self) -> String {
        let buf = self.buf.lock().unwrap();
        let mut out = schema_header();
        out.push('\n');
        out.push_str(&buf);
        out
    }

    /// Number of events captured so far (the schema header is not an event).
    pub fn events(&self) -> usize {
        self.buf.lock().unwrap().lines().count()
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("events always serialize");
        let mut buf = self.buf.lock().unwrap();
        buf.push_str(&line);
        buf.push('\n');
    }
}

/// Broadcasts every event to several sinks (e.g. metrics + JSONL at once).
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Creates a tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn emit(&self, event: &Event) {
        for s in &self.sinks {
            s.emit(event);
        }
    }
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.emit(&Event::EditApplied {
            kind: "noop".into(),
            at_min: 0.0,
        });
    }

    #[test]
    fn metrics_counts_verdicts_and_kinds() {
        let s = MetricsSink::new();
        for (verdict, cost) in [
            (Verdict::Admitted, 2.5),
            (Verdict::Admitted, 3.5),
            (Verdict::StyleRejected, 0.05),
            (Verdict::Inapplicable, 0.0),
            (Verdict::Duplicate, 0.0),
            (Verdict::Regressed, 2.0),
        ] {
            s.emit(&Event::CandidateEvaluated {
                kind: "type_trans".into(),
                fingerprint: 1,
                verdict,
                sim_cost_min: cost,
                at_min: 0.0,
            });
        }
        assert_eq!(s.counter("candidate_evaluated"), 6);
        assert_eq!(s.counter("candidate.admitted"), 2);
        assert_eq!(s.counter("candidate.style_rejected"), 1);
        assert_eq!(s.counter("candidate.inapplicable"), 1);
        assert_eq!(s.counter("candidate.duplicate"), 1);
        assert_eq!(s.counter("candidate.regressed"), 1);
        assert_eq!(s.counter("candidate.never"), 0);
        let h = s.histogram("candidate.sim_cost_min").unwrap();
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 8.05).abs() < 1e-12);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 3.5);
    }

    #[test]
    fn metrics_tracks_phase_spans_and_compiles() {
        let s = MetricsSink::new();
        s.emit(&Event::PhaseEnter {
            phase: "repair".into(),
            at_min: 1.0,
        });
        s.emit(&Event::FullCompile {
            fingerprint: 7,
            loc: 40,
            cost_min: 2.8,
            at_min: 3.8,
        });
        s.emit(&Event::FullCompile {
            fingerprint: 8,
            loc: 41,
            cost_min: 2.82,
            at_min: 6.62,
        });
        s.emit(&Event::PhaseExit {
            phase: "repair".into(),
            at_min: 7.0,
            elapsed_min: 6.0,
        });
        assert_eq!(s.counter("full_compile"), 2);
        let c = s.histogram("full_compile.cost_min").unwrap();
        assert_eq!(c.count(), 2);
        assert!((c.mean() - 2.81).abs() < 1e-12);
        let p = s.histogram("phase.repair.min").unwrap();
        assert_eq!(p.count(), 1);
        assert_eq!(p.sum(), 6.0);
    }

    #[test]
    fn metrics_phase_span_falls_back_to_timestamps() {
        let s = MetricsSink::new();
        s.emit(&Event::PhaseEnter {
            phase: "testgen".into(),
            at_min: 2.0,
        });
        s.emit(&Event::PhaseExit {
            phase: "testgen".into(),
            at_min: 5.5,
            elapsed_min: 0.0,
        });
        assert_eq!(s.histogram("phase.testgen.min").unwrap().sum(), 3.5);
    }

    #[test]
    fn jsonl_renders_one_object_per_line() {
        let s = JsonlSink::new();
        s.emit(&Event::PhaseEnter {
            phase: "testgen".into(),
            at_min: 0.0,
        });
        s.emit(&Event::StyleReject {
            fingerprint: 0xabcd,
            at_min: 1.5,
        });
        let out = s.contents();
        assert_eq!(s.events(), 2);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], schema_header());
        assert_eq!(
            lines[1],
            r#"{"event":"phase_enter","phase":"testgen","at_min":0.0}"#
        );
        assert_eq!(
            lines[2],
            r#"{"event":"style_reject","fingerprint":"000000000000abcd","at_min":1.5}"#
        );
    }

    #[test]
    fn jsonl_stream_opens_with_schema_header() {
        let s = JsonlSink::new();
        assert_eq!(
            s.contents(),
            format!("{{\"event\":\"schema\",\"schema_version\":{SCHEMA_VERSION}}}\n")
        );
        assert_eq!(s.events(), 0);
    }

    #[test]
    fn tee_broadcasts_and_reports_enabled() {
        let metrics = Arc::new(MetricsSink::new());
        let jsonl = Arc::new(JsonlSink::new());
        let tee = TeeSink::new(vec![metrics.clone(), jsonl.clone()]);
        assert!(tee.enabled());
        tee.emit(&Event::EditApplied {
            kind: "resize".into(),
            at_min: 4.0,
        });
        assert_eq!(metrics.counter("edit_applied.resize"), 1);
        assert_eq!(jsonl.events(), 1);
        let off = TeeSink::new(vec![Arc::new(NullSink)]);
        assert!(!off.enabled());
    }

    #[test]
    fn jsonl_renders_fault_events() {
        let s = JsonlSink::new();
        s.emit(&Event::FaultInjected {
            site: "hls_check".into(),
            fault: "transient".into(),
            fingerprint: 0x1f,
            attempt: 0,
            at_min: 2.0,
        });
        s.emit(&Event::RetryScheduled {
            site: "hls_check".into(),
            fingerprint: 0x1f,
            attempt: 1,
            delay_min: 0.25,
            at_min: 2.0,
        });
        s.emit(&Event::CandidateCrashed {
            kind: "resize".into(),
            fingerprint: 0x2a,
            at_min: 3.5,
        });
        s.emit(&Event::PhaseDegraded {
            phase: "repair".into(),
            reason: "permanent_fault".into(),
            at_min: 4.0,
        });
        let out = s.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[1],
            r#"{"event":"fault_injected","site":"hls_check","fault":"transient","fingerprint":"000000000000001f","attempt":0,"at_min":2.0}"#
        );
        assert_eq!(
            lines[2],
            r#"{"event":"retry_scheduled","site":"hls_check","fingerprint":"000000000000001f","attempt":1,"delay_min":0.25,"at_min":2.0}"#
        );
        assert_eq!(
            lines[3],
            r#"{"event":"candidate_crashed","kind":"resize","fingerprint":"000000000000002a","at_min":3.5}"#
        );
        assert_eq!(
            lines[4],
            r#"{"event":"phase_degraded","phase":"repair","reason":"permanent_fault","at_min":4.0}"#
        );
    }

    #[test]
    fn metrics_counts_faults_and_retries() {
        let s = MetricsSink::new();
        s.emit(&Event::FaultInjected {
            site: "hls_sim".into(),
            fault: "transient".into(),
            fingerprint: 1,
            attempt: 0,
            at_min: 0.0,
        });
        s.emit(&Event::FaultInjected {
            site: "hls_sim".into(),
            fault: "fuel_spike".into(),
            fingerprint: 2,
            attempt: 0,
            at_min: 0.0,
        });
        s.emit(&Event::RetryScheduled {
            site: "hls_sim".into(),
            fingerprint: 1,
            attempt: 1,
            delay_min: 0.25,
            at_min: 0.0,
        });
        s.emit(&Event::RetryScheduled {
            site: "hls_sim".into(),
            fingerprint: 1,
            attempt: 2,
            delay_min: 0.5,
            at_min: 0.0,
        });
        s.emit(&Event::PhaseDegraded {
            phase: "repair".into(),
            reason: "budget".into(),
            at_min: 9.0,
        });
        assert_eq!(s.counter("fault_injected"), 2);
        assert_eq!(s.counter("fault.hls_sim"), 2);
        assert_eq!(s.counter("retry_scheduled"), 2);
        assert_eq!(s.counter("degraded.repair"), 1);
        let h = s.histogram("retry.delay_min").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.75);
    }

    #[test]
    fn toolchain_invocations_render_and_count() {
        let ev = Event::ToolchainInvoked {
            backend: "hls_sim/xcvu9p".into(),
            op: "compile".into(),
            fingerprint: 0xfeed,
        };
        let s = JsonlSink::new();
        s.emit(&ev);
        assert_eq!(
            s.contents().lines().nth(1).unwrap(),
            r#"{"event":"toolchain_invoked","backend":"hls_sim/xcvu9p","op":"compile","fingerprint":"000000000000feed"}"#
        );
        let m = MetricsSink::new();
        m.emit(&ev);
        assert_eq!(m.counter("toolchain_invoked"), 1);
        assert_eq!(m.counter("toolchain.compile"), 1);
    }

    #[test]
    fn crashed_verdict_has_stable_name() {
        assert_eq!(Verdict::Crashed.as_str(), "crashed");
        let s = MetricsSink::new();
        s.emit(&Event::CandidateEvaluated {
            kind: "resize".into(),
            fingerprint: 9,
            verdict: Verdict::Crashed,
            sim_cost_min: 0.0,
            at_min: 1.0,
        });
        assert_eq!(s.counter("candidate.crashed"), 1);
    }

    #[test]
    fn histogram_aggregates() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.record(2.0);
        h.record(-1.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), 2.0);
    }
}
