//! HeteroGen-as-a-service: an in-process job server over the pipeline
//! library.
//!
//! A [`Server`] owns a bounded fair-share job queue and a pool of worker
//! threads. Clients [`Server::submit`] typed
//! [`JobSpec`]s and get back a [`JobHandle`];
//! admission is FIFO within a client and round-robin across clients, so a
//! heavy client cannot starve a light one. Over-capacity submissions fail
//! fast with a typed [`Rejected`] response instead of queueing unboundedly.
//!
//! # Execution model
//!
//! Each accepted job runs a full pipeline [`Session`](heterogen_core::Session)
//! on one worker thread, wrapped in [`parallel::isolate`] (a panicking job
//! fails that job, never the server). The worker resolves the spec's backend
//! name through [`heterogen_core::resolve_backend`] — the same resolver the
//! library path uses — and wraps it in a [`DrainGate`], so a job executed by
//! the server is *byte-identical* (report JSON and captured trace stream) to
//! the same spec run through a `Session` directly, at any worker count.
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] flips the shared [`DrainSignal`] and lets the pool
//! drain. In-flight repair searches lose their toolchain mid-search and
//! degrade through the permanent-fault path; still-queued jobs run under
//! [`ServerConfig::drain_budgets`] with the gate already closed. Every
//! accepted job therefore still yields an `Ok(PipelineReport)` — with a
//! `Degradation` record — rather than being dropped.
//!
//! # Examples
//!
//! ```
//! use heterogen_core::{JobSpec, PipelineConfig};
//! use heterogen_server::{Server, ServerConfig};
//!
//! let mut pipeline = PipelineConfig::quick();
//! pipeline.fuzz.idle_stop_min = 0.2;
//! pipeline.fuzz.max_execs = 60;
//! let server = Server::start(ServerConfig::builder().with_pipeline(pipeline).build());
//! let program = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
//! let handle = server
//!     .submit(JobSpec::builder(program, "kernel").client("docs").build())
//!     .unwrap();
//! let output = handle.wait();
//! assert!(output.report.unwrap().success());
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

use heterogen_core::{HeteroGen, JobSpec, PhaseBudgets, PipelineConfig, PipelineError};
use heterogen_store::Store;
use heterogen_toolchain::{DrainGate, DrainSignal, SimBackend, Toolchain};
use heterogen_trace::JsonlSink;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

pub mod loadgen;

pub use heterogen_core::PipelineReport;

/// Server configuration.
///
/// `#[non_exhaustive]`: construct with [`ServerConfig::builder`] so future
/// knobs are not semver breaks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Worker threads; `0` means "use available parallelism".
    pub workers: usize,
    /// Total queued-job cap across all clients; submissions beyond it are
    /// rejected with [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Per-client queued-job cap; a client at its cap is rejected with
    /// [`RejectReason::ClientSaturated`] while others keep submitting.
    pub per_client_queue: usize,
    /// The pipeline configuration every job runs under (specs may override
    /// seed/budgets/backend per job).
    pub pipeline: PipelineConfig,
    /// Capture a per-job JSONL trace stream into [`JobOutput::trace`].
    pub capture_traces: bool,
    /// Budgets forced onto jobs dequeued *after* shutdown begins, so the
    /// drain finishes promptly.
    pub drain_budgets: PhaseBudgets,
    /// Start with the queue paused: jobs are admitted but no worker picks
    /// them up until [`Server::resume`] (deterministic scheduling tests).
    pub paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            per_client_queue: 16,
            pipeline: PipelineConfig::default(),
            capture_traces: false,
            drain_budgets: PhaseBudgets::builder()
                .with_fuzz_execs(32)
                .with_repair_evals(1)
                .build(),
            paused: false,
        }
    }
}

impl ServerConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_workers(mut self, v: usize) -> Self {
        self.cfg.workers = v;
        self
    }

    /// Sets the total queue capacity.
    pub fn with_queue_capacity(mut self, v: usize) -> Self {
        self.cfg.queue_capacity = v;
        self
    }

    /// Sets the per-client queue cap.
    pub fn with_per_client_queue(mut self, v: usize) -> Self {
        self.cfg.per_client_queue = v;
        self
    }

    /// Sets the pipeline configuration jobs run under.
    pub fn with_pipeline(mut self, v: PipelineConfig) -> Self {
        self.cfg.pipeline = v;
        self
    }

    /// Enables per-job trace capture.
    pub fn with_capture_traces(mut self, v: bool) -> Self {
        self.cfg.capture_traces = v;
        self
    }

    /// Sets the budgets forced onto jobs dequeued during shutdown.
    pub fn with_drain_budgets(mut self, v: PhaseBudgets) -> Self {
        self.cfg.drain_budgets = v;
        self
    }

    /// Starts the server paused (see [`ServerConfig::paused`]).
    pub fn with_paused(mut self, v: bool) -> Self {
        self.cfg.paused = v;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ServerConfig {
        self.cfg
    }
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The server-wide queue is at [`ServerConfig::queue_capacity`].
    QueueFull,
    /// This client is at its [`ServerConfig::per_client_queue`] cap.
    ClientSaturated,
    /// [`Server::shutdown`] has begun; no new work is admitted.
    ShuttingDown,
}

impl RejectReason {
    /// Stable snake_case name for logs and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::ClientSaturated => "client_saturated",
            RejectReason::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed admission refusal. The spec was not queued and will not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Why admission was refused.
    pub reason: RejectReason,
    /// The client whose submission was refused.
    pub client: String,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job from `{}` rejected: {}", self.client, self.reason)
    }
}

impl std::error::Error for Rejected {}

/// The result of one server-executed job.
#[derive(Debug)]
pub struct JobOutput {
    /// Server-assigned job id (admission order, starting at 1).
    pub id: u64,
    /// The submitting client.
    pub client: String,
    /// Completion order across the whole server (starting at 1).
    pub seq: u64,
    /// The pipeline report, exactly as a direct
    /// [`Session::run`](heterogen_core::Session::run) would return it.
    pub report: Result<PipelineReport, PipelineError>,
    /// The job's JSONL trace stream when
    /// [`ServerConfig::capture_traces`] is on.
    pub trace: Option<String>,
    /// Wall-clock execution time (excluding queueing), in milliseconds.
    pub wall_ms: f64,
    /// Wall-clock time spent queued before a worker picked the job up.
    pub queue_ms: f64,
}

/// A claim on one accepted job's eventual [`JobOutput`].
#[derive(Debug)]
pub struct JobHandle {
    /// Server-assigned job id.
    pub id: u64,
    /// The submitting client.
    pub client: String,
    rx: mpsc::Receiver<JobOutput>,
}

impl JobHandle {
    /// Blocks until the job completes. Every accepted job completes — even
    /// through a shutdown, where it degrades rather than disappears.
    pub fn wait(self) -> JobOutput {
        self.rx
            .recv()
            .expect("every accepted job reports an output")
    }
}

/// Latency distribution summary (milliseconds), nearest-rank percentiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Samples aggregated.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    /// Summarizes a sample set (nearest-rank percentiles).
    pub fn from_samples(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |q: f64| {
            let idx = (q * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        LatencyStats {
            count: sorted.len() as u64,
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// A server-wide metrics snapshot, aggregated across every completed job.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServerStats {
    /// Submissions admitted to the queue.
    pub accepted: u64,
    /// Submissions refused with [`RejectReason::QueueFull`].
    pub rejected_queue_full: u64,
    /// Submissions refused with [`RejectReason::ClientSaturated`].
    pub rejected_client_saturated: u64,
    /// Submissions refused with [`RejectReason::ShuttingDown`].
    pub rejected_shutting_down: u64,
    /// Jobs a worker has started executing.
    pub started: u64,
    /// Jobs that produced an output.
    pub completed: u64,
    /// Completed jobs whose report was `Ok` with a full repair.
    pub succeeded: u64,
    /// Completed jobs whose report was `Ok` but degraded.
    pub degraded: u64,
    /// Completed jobs whose report was an `Err` (spec/pipeline failures and
    /// isolated panics).
    pub failed: u64,
    /// Repair-search edit attempts summed across jobs.
    pub attempts: u64,
    /// Full HLS compiles summed across jobs.
    pub full_compiles: u64,
    /// Retries absorbed while degrading, summed across jobs' degradations.
    pub retries: u64,
    /// Faults absorbed while degrading, summed across jobs' degradations.
    pub faults: u64,
    /// Distribution of per-job queue wait.
    pub queue_ms: LatencyStats,
    /// Distribution of per-job execution wall time.
    pub wall_ms: LatencyStats,
}

impl ServerStats {
    /// Total refusals across every [`RejectReason`].
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_client_saturated + self.rejected_shutting_down
    }
}

/// One admitted job waiting for a worker.
struct QueuedJob {
    id: u64,
    client: String,
    spec: JobSpec,
    tx: mpsc::Sender<JobOutput>,
    enqueued: Instant,
}

/// The fair-share queue: FIFO within a client, round-robin across clients.
///
/// Invariant: `rr` holds exactly the clients whose queue is non-empty, each
/// once, in service order.
#[derive(Default)]
struct QueueState {
    queues: BTreeMap<String, VecDeque<QueuedJob>>,
    rr: VecDeque<String>,
    queued: usize,
    draining: bool,
    paused: bool,
}

impl QueueState {
    fn pop(&mut self) -> Option<QueuedJob> {
        let client = self.rr.pop_front()?;
        let queue = self
            .queues
            .get_mut(&client)
            .expect("rr tracks non-empty queues");
        let job = queue.pop_front().expect("rr tracks non-empty queues");
        if queue.is_empty() {
            self.queues.remove(&client);
        } else {
            self.rr.push_back(client);
        }
        self.queued -= 1;
        Some(job)
    }
}

/// Mutable half of the stats: counters plus raw latency samples.
#[derive(Default)]
struct StatsInner {
    stats: ServerStats,
    queue_samples: Vec<f64>,
    wall_samples: Vec<f64>,
}

impl StatsInner {
    fn snapshot(&self, started: u64) -> ServerStats {
        let mut out = self.stats.clone();
        out.started = started;
        out.queue_ms = LatencyStats::from_samples(&self.queue_samples);
        out.wall_ms = LatencyStats::from_samples(&self.wall_samples);
        out
    }
}

struct Inner {
    cfg: ServerConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    drain: DrainSignal,
    stats: Mutex<StatsInner>,
    next_id: AtomicU64,
    completion_seq: AtomicU64,
    started: AtomicU64,
    default_backend: Arc<dyn Toolchain>,
    store: Option<Arc<Store>>,
}

impl Inner {
    fn run_job(&self, job: QueuedJob) {
        self.started.fetch_add(1, Ordering::SeqCst);
        let queue_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        let begun = Instant::now();
        let mut spec = job.spec;
        if self.drain.is_draining() {
            // Dequeued after shutdown began: finish, but promptly.
            spec.budgets = Some(self.cfg.drain_budgets);
        }
        let resolved = match spec.backend.take() {
            None => Ok(self.default_backend.clone()),
            Some(name) => heterogen_core::resolve_backend(&name),
        };
        let (report, trace) = match resolved {
            Err(e) => (Err(e), None),
            Ok(backend) => {
                let sink = self.cfg.capture_traces.then(|| Arc::new(JsonlSink::new()));
                let mut builder = HeteroGen::builder()
                    .config(self.cfg.pipeline.clone())
                    .backend(DrainGate::new(backend, self.drain.clone()));
                if let Some(s) = &sink {
                    builder = builder.sink(s.clone());
                }
                if let Some(store) = &self.store {
                    builder = builder.store(store.clone());
                }
                let session = builder.build();
                let report = parallel::isolate(move || session.run(spec)).unwrap_or_else(|panic| {
                    Err(PipelineError::Repair(format!("job panicked: {panic}")))
                });
                (report, sink.map(|s| s.contents()))
            }
        };
        let wall_ms = begun.elapsed().as_secs_f64() * 1e3;
        {
            let mut s = self.stats.lock().unwrap();
            s.stats.completed += 1;
            match &report {
                Ok(r) => {
                    if r.success() {
                        s.stats.succeeded += 1;
                    }
                    if r.degraded() {
                        s.stats.degraded += 1;
                    }
                    s.stats.attempts += r.repair.attempts;
                    s.stats.full_compiles += r.repair.full_compiles;
                    for d in &r.degradations {
                        s.stats.retries += d.retries;
                        s.stats.faults += d.faults;
                    }
                }
                Err(_) => s.stats.failed += 1,
            }
            s.queue_samples.push(queue_ms);
            s.wall_samples.push(wall_ms);
        }
        let seq = self.completion_seq.fetch_add(1, Ordering::SeqCst) + 1;
        // A dropped handle just means nobody is listening; the job still
        // counted toward the server stats.
        let _ = job.tx.send(JobOutput {
            id: job.id,
            client: job.client,
            seq,
            report,
            trace,
            wall_ms,
            queue_ms,
        });
    }

    fn worker_loop(self: &Arc<Inner>) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if !q.paused {
                        if let Some(job) = q.pop() {
                            break Some(job);
                        }
                        if q.draining {
                            break None;
                        }
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            match job {
                Some(job) => self.run_job(job),
                None => return,
            }
        }
    }
}

/// The in-process HeteroGen job server. See the crate docs for the model.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool and returns the running server.
    pub fn start(cfg: ServerConfig) -> Server {
        Server::start_with_store(cfg, None)
    }

    /// Starts the worker pool with a shared persistent evaluation store.
    ///
    /// Every job session the workers build attaches the store, so verdict
    /// memos and fuzz corpora survive across jobs (and across server
    /// restarts, since the store is crash-safe). A job whose spec carries
    /// its own `store_dir` still opens that directory instead.
    pub fn start_with_store(cfg: ServerConfig, store: Option<Arc<Store>>) -> Server {
        let worker_count = parallel::effective_threads(cfg.workers);
        let paused = cfg.paused;
        let inner = Arc::new(Inner {
            cfg,
            queue: Mutex::new(QueueState {
                paused,
                ..QueueState::default()
            }),
            available: Condvar::new(),
            drain: DrainSignal::new(),
            stats: Mutex::new(StatsInner::default()),
            next_id: AtomicU64::new(0),
            completion_seq: AtomicU64::new(0),
            started: AtomicU64::new(0),
            default_backend: Arc::new(SimBackend::default_profile()),
            store,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("heterogen-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawning a worker thread")
            })
            .collect();
        Server { inner, workers }
    }

    /// The number of worker threads actually running (after resolving
    /// `workers == 0` to the available parallelism).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits one job for execution.
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the queue or the client's share is full, or the
    /// server is shutting down. A rejected spec was not queued.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Rejected> {
        let client = spec.client.clone();
        let reject = |reason: RejectReason| {
            let mut s = self.inner.stats.lock().unwrap();
            match reason {
                RejectReason::QueueFull => s.stats.rejected_queue_full += 1,
                RejectReason::ClientSaturated => s.stats.rejected_client_saturated += 1,
                RejectReason::ShuttingDown => s.stats.rejected_shutting_down += 1,
            }
            Err(Rejected {
                reason,
                client: client.clone(),
            })
        };
        let mut q = self.inner.queue.lock().unwrap();
        if q.draining {
            return reject(RejectReason::ShuttingDown);
        }
        if q.queued >= self.inner.cfg.queue_capacity {
            return reject(RejectReason::QueueFull);
        }
        let per = q.queues.entry(client.clone()).or_default();
        if per.len() >= self.inner.cfg.per_client_queue {
            let empty = per.is_empty();
            if empty {
                q.queues.remove(&client);
            }
            return reject(RejectReason::ClientSaturated);
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let (tx, rx) = mpsc::channel();
        let was_empty = per.is_empty();
        per.push_back(QueuedJob {
            id,
            client: client.clone(),
            spec,
            tx,
            enqueued: Instant::now(),
        });
        if was_empty {
            q.rr.push_back(client.clone());
        }
        q.queued += 1;
        drop(q);
        self.inner.stats.lock().unwrap().stats.accepted += 1;
        self.inner.available.notify_one();
        Ok(JobHandle { id, client, rx })
    }

    /// Unpauses a server started with [`ServerConfig::paused`]. Idempotent.
    pub fn resume(&self) {
        self.inner.queue.lock().unwrap().paused = false;
        self.inner.available.notify_all();
    }

    /// A point-in-time metrics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.inner
            .stats
            .lock()
            .unwrap()
            .snapshot(self.inner.started.load(Ordering::SeqCst))
    }

    /// Gracefully shuts down: refuses new admissions, revokes in-flight
    /// toolchains through the [`DrainSignal`], drains the queue under
    /// [`ServerConfig::drain_budgets`], joins the pool, and returns the
    /// final stats. Every already-accepted job still completes (degraded).
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }

    fn begin_drain(&self) {
        self.inner.drain.drain();
        let mut q = self.inner.queue.lock().unwrap();
        q.draining = true;
        q.paused = false;
        drop(q);
        self.inner.available.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_drain();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pipeline() -> PipelineConfig {
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 60;
        cfg.fuzz.threads = 1;
        cfg.search.threads = 1;
        cfg
    }

    fn spec(client: &str) -> JobSpec {
        let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
        JobSpec::builder(p, "kernel").client(client).build()
    }

    #[test]
    fn queue_capacity_rejects_with_queue_full() {
        let server = Server::start(
            ServerConfig::builder()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_pipeline(tiny_pipeline())
                .with_paused(true)
                .build(),
        );
        assert!(server.submit(spec("a")).is_ok());
        assert!(server.submit(spec("b")).is_ok());
        let err = server.submit(spec("c")).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull);
        assert_eq!(err.client, "c");
        assert_eq!(server.stats().rejected_queue_full, 1);
        assert_eq!(server.stats().accepted, 2);
    }

    #[test]
    fn per_client_cap_rejects_only_the_saturated_client() {
        let server = Server::start(
            ServerConfig::builder()
                .with_workers(1)
                .with_per_client_queue(1)
                .with_pipeline(tiny_pipeline())
                .with_paused(true)
                .build(),
        );
        assert!(server.submit(spec("heavy")).is_ok());
        let err = server.submit(spec("heavy")).unwrap_err();
        assert_eq!(err.reason, RejectReason::ClientSaturated);
        // Another client still gets in.
        assert!(server.submit(spec("light")).is_ok());
    }

    #[test]
    fn round_robin_interleaves_clients_fifo_within_each() {
        let mut q = QueueState::default();
        let mk = |client: &str, id: u64| {
            // The receiver is dropped — these queue-level tests never send.
            let (tx, _rx) = mpsc::channel();
            QueuedJob {
                id,
                client: client.to_string(),
                spec: spec(client),
                tx,
                enqueued: Instant::now(),
            }
        };
        for (client, id) in [("a", 1), ("a", 2), ("a", 3), ("b", 4), ("c", 5), ("b", 6)] {
            let per = q.queues.entry(client.to_string()).or_default();
            let was_empty = per.is_empty();
            per.push_back(mk(client, id));
            if was_empty {
                q.rr.push_back(client.to_string());
            }
            q.queued += 1;
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(
            order,
            vec![1, 4, 5, 2, 6, 3],
            "a,b,c,a,b,a — FIFO per client"
        );
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let server = Server::start(
            ServerConfig::builder()
                .with_workers(1)
                .with_pipeline(tiny_pipeline())
                .build(),
        );
        let h = server.submit(spec("a")).unwrap();
        assert!(h.wait().report.unwrap().success());
        server.begin_drain();
        let err = server.submit(spec("a")).unwrap_err();
        assert_eq!(err.reason, RejectReason::ShuttingDown);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.succeeded, 1);
        assert_eq!(stats.rejected_shutting_down, 1);
        assert_eq!(stats.wall_ms.count, 1);
    }

    #[test]
    fn latency_stats_nearest_rank() {
        let s = LatencyStats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p90, 4.0);
        assert_eq!(s.p99, 4.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn unknown_backend_fails_the_job_not_the_server() {
        let server = Server::start(
            ServerConfig::builder()
                .with_workers(1)
                .with_pipeline(tiny_pipeline())
                .build(),
        );
        let p = minic::parse("int kernel(int x) { return x; }").unwrap();
        let bad = JobSpec::builder(p, "kernel").backend("asic-9000").build();
        let out = server.submit(bad).unwrap().wait();
        assert!(matches!(out.report, Err(PipelineError::Spec(_))));
        // The server is still healthy.
        let out2 = server.submit(spec("a")).unwrap().wait();
        assert!(out2.report.unwrap().success());
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.succeeded, 1);
    }
}
