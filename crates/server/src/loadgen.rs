//! Load generation against a [`Server`]: replays many
//! concurrent seeded jobs and summarizes latency, throughput, and rejection
//! behaviour — the engine behind `reproduce loadgen` and the committed
//! `BENCH_server.json`.
//!
//! Submission is open-loop with bounded retry: every job is offered as fast
//! as the submitting thread can go; a refusal counts toward the rejection
//! rate and the job retries after a short backoff until
//! [`LoadgenConfig::max_retries`] is spent. Small runs under the queue
//! capacity therefore see zero rejections (the CI smoke), while runs that
//! overdrive the queue measure real admission control.

use crate::{JobOutput, LatencyStats, Server, ServerConfig};
use heterogen_core::JobSpec;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Load-generation parameters.
///
/// `#[non_exhaustive]`: construct with [`LoadgenConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct LoadgenConfig {
    /// Total jobs to replay.
    pub jobs: usize,
    /// Distinct client identities the jobs are spread across (round-robin
    /// by job index).
    pub clients: usize,
    /// Backoff between admission retries of one job.
    pub retry_backoff: Duration,
    /// Admission retries per job before it is dropped. Every refusal —
    /// retried or not — counts toward the rejection rate.
    pub max_retries: u32,
    /// The server under load.
    pub server: ServerConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            jobs: 200,
            clients: 8,
            retry_backoff: Duration::from_millis(5),
            max_retries: 10_000,
            server: ServerConfig::default(),
        }
    }
}

impl LoadgenConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> LoadgenConfigBuilder {
        LoadgenConfigBuilder {
            cfg: LoadgenConfig::default(),
        }
    }
}

/// Builder for [`LoadgenConfig`].
#[derive(Debug, Clone)]
pub struct LoadgenConfigBuilder {
    cfg: LoadgenConfig,
}

impl LoadgenConfigBuilder {
    /// Sets the total job count.
    pub fn with_jobs(mut self, v: usize) -> Self {
        self.cfg.jobs = v;
        self
    }

    /// Sets the number of distinct clients.
    pub fn with_clients(mut self, v: usize) -> Self {
        self.cfg.clients = v.max(1);
        self
    }

    /// Sets the backoff between admission retries.
    pub fn with_retry_backoff(mut self, v: Duration) -> Self {
        self.cfg.retry_backoff = v;
        self
    }

    /// Sets the admission retries per job before it is dropped.
    pub fn with_max_retries(mut self, v: u32) -> Self {
        self.cfg.max_retries = v;
        self
    }

    /// Sets the configuration of the server under load.
    pub fn with_server(mut self, v: ServerConfig) -> Self {
        self.cfg.server = v;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> LoadgenConfig {
        self.cfg
    }
}

/// The measured result of one load-generation run: the shape committed to
/// `BENCH_server.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Wire-format version (see [`heterogen_trace::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Jobs offered.
    pub jobs: usize,
    /// Distinct clients.
    pub clients: usize,
    /// Worker threads actually running.
    pub workers: usize,
    /// Server-wide queue capacity.
    pub queue_capacity: usize,
    /// Per-client queue cap.
    pub per_client_queue: usize,
    /// Jobs eventually admitted.
    pub accepted: u64,
    /// Admission refusals (each retry attempt that was refused counts).
    pub rejections: u64,
    /// `rejections / (accepted + rejections)`.
    pub rejection_rate: f64,
    /// Jobs dropped after exhausting their admission retries.
    pub dropped: u64,
    /// Jobs that produced an output.
    pub completed: u64,
    /// Completed jobs with a fully successful repair.
    pub succeeded: u64,
    /// Completed jobs that degraded.
    pub degraded: u64,
    /// Completed jobs whose report errored (includes isolated panics).
    pub failed: u64,
    /// End-to-end run duration in seconds (submission through drain).
    pub wall_s: f64,
    /// `completed / wall_s`.
    pub throughput_jobs_per_sec: f64,
    /// Distribution of per-job execution wall time (ms).
    pub latency_ms: LatencyStats,
    /// Distribution of per-job queue wait (ms).
    pub queue_wait_ms: LatencyStats,
    /// Repair-search edit attempts summed across jobs.
    pub attempts: u64,
    /// Full HLS compiles summed across jobs.
    pub full_compiles: u64,
}

/// Replays `cfg.jobs` specs from `make_spec` against a fresh server and
/// summarizes the run.
///
/// `make_spec(i)` builds the i-th job; the driver overwrites its client id
/// to spread jobs round-robin across [`LoadgenConfig::clients`] identities.
/// Specs should pin per-job seeds (and single-threaded phase configs) so a
/// run is reproducible: parallelism comes from the worker pool, not from
/// inside each job.
pub fn run(cfg: &LoadgenConfig, make_spec: impl Fn(usize) -> JobSpec) -> LoadgenReport {
    let server = Server::start(cfg.server.clone());
    let workers = server.worker_count();
    let begun = Instant::now();
    let mut handles = Vec::with_capacity(cfg.jobs);
    let mut rejections = 0u64;
    let mut dropped = 0u64;
    for i in 0..cfg.jobs {
        let mut spec = make_spec(i);
        spec.client = format!("client-{:02}", i % cfg.clients);
        let mut retries_left = cfg.max_retries;
        loop {
            match server.submit(spec.clone()) {
                Ok(handle) => {
                    handles.push(handle);
                    break;
                }
                Err(_) => {
                    rejections += 1;
                    if retries_left == 0 {
                        dropped += 1;
                        break;
                    }
                    retries_left -= 1;
                    std::thread::sleep(cfg.retry_backoff);
                }
            }
        }
    }
    let outputs: Vec<JobOutput> = handles.into_iter().map(|h| h.wait()).collect();
    let stats = server.shutdown();
    let wall_s = begun.elapsed().as_secs_f64();
    let latency_ms =
        LatencyStats::from_samples(&outputs.iter().map(|o| o.wall_ms).collect::<Vec<_>>());
    let queue_wait_ms =
        LatencyStats::from_samples(&outputs.iter().map(|o| o.queue_ms).collect::<Vec<_>>());
    LoadgenReport {
        schema_version: heterogen_trace::SCHEMA_VERSION,
        jobs: cfg.jobs,
        clients: cfg.clients,
        workers,
        queue_capacity: cfg.server.queue_capacity,
        per_client_queue: cfg.server.per_client_queue,
        accepted: stats.accepted,
        rejections,
        rejection_rate: if stats.accepted + rejections > 0 {
            rejections as f64 / (stats.accepted + rejections) as f64
        } else {
            0.0
        },
        dropped,
        completed: stats.completed,
        succeeded: stats.succeeded,
        degraded: stats.degraded,
        failed: stats.failed,
        wall_s,
        throughput_jobs_per_sec: if wall_s > 0.0 {
            stats.completed as f64 / wall_s
        } else {
            0.0
        },
        latency_ms,
        queue_wait_ms,
        attempts: stats.attempts,
        full_compiles: stats.full_compiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heterogen_core::PipelineConfig;

    #[test]
    fn smoke_run_completes_every_job() {
        let mut pipeline = PipelineConfig::quick();
        pipeline.fuzz.idle_stop_min = 0.2;
        pipeline.fuzz.max_execs = 60;
        pipeline.fuzz.threads = 1;
        pipeline.search.threads = 1;
        let cfg = LoadgenConfig::builder()
            .with_jobs(6)
            .with_clients(3)
            .with_server(
                ServerConfig::builder()
                    .with_workers(2)
                    .with_pipeline(pipeline)
                    .build(),
            )
            .build();
        let report = run(&cfg, |i| {
            let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
            JobSpec::builder(p, "kernel").seed(i as u64).build()
        });
        assert_eq!(report.completed, 6);
        assert_eq!(report.failed, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.rejections, 0, "6 jobs fit a 64-deep queue");
        assert!(report.throughput_jobs_per_sec > 0.0);
        assert_eq!(report.latency_ms.count, 6);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("\"throughput_jobs_per_sec\""));
    }
}
