//! The HeteroGen pipeline (paper Figure 1): test-input generation → initial
//! HLS version generation → iterative repair → report.
//!
//! ```text
//!  P_orig ──fuzz──▶ tests + profile
//!     │                   │
//!     └──finitize types───▶ P_broken ──repair loop──▶ P_hls + report
//! ```
//!
//! # Examples
//!
//! ```
//! use heterogen_core::{HeteroGen, JobSpec, PipelineConfig};
//!
//! let program = minic::parse(
//!     "int kernel(int x) { long double y = x; y = y + 1; return y; }",
//! ).unwrap();
//! let mut cfg = PipelineConfig::quick();
//! cfg.fuzz.idle_stop_min = 0.5;
//! cfg.fuzz.max_execs = 200;
//! let session = HeteroGen::builder().config(cfg).build();
//! let report = session.run(JobSpec::fuzz(program, "kernel", vec![])).unwrap();
//! assert!(report.success());
//! ```

use heterogen_faults::{FaultInjector, NoFaults};
use heterogen_store::{CorpusRecord, FuzzRound, ScriptKey, Store};
use heterogen_toolchain::{SimBackend, Toolchain, VerdictStore};
use heterogen_trace::{Event, NullSink, TraceSink};
use minic::types::Type;
use minic::Program;
use minic_exec::{ExecEngine, Profile};
use repair::{EditScript, RepairOutcome, SearchConfig, SearchStop};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use testgen::{FuzzConfig, FuzzReport, TestCase};

/// Pipeline configuration.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`PipelineConfig::builder`] (or start from [`PipelineConfig::default`] /
/// [`PipelineConfig::quick`] and assign fields) so future knobs are not
/// semver breaks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Test-generation settings (paper §4).
    pub fuzz: FuzzConfig,
    /// Repair-search settings (paper §5).
    pub search: SearchConfig,
    /// Apply profile-guided bitwidth finitization when building the initial
    /// HLS version (the `int ret` → `fpga_uint<7>` step).
    pub bitwidth_finitization: bool,
    /// Hard per-phase work budgets; exhaustion degrades the report instead
    /// of erroring (see [`Degradation`]).
    pub budgets: PhaseBudgets,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            fuzz: FuzzConfig::default(),
            search: SearchConfig::default(),
            bitwidth_finitization: true,
            budgets: PhaseBudgets::default(),
        }
    }
}

/// Hard per-phase work budgets.
///
/// Budgets cap *work counts* (executions, toolchain evaluations), which are
/// deterministic, rather than wall-clock time. A phase that hits its budget
/// stops early and the pipeline degrades gracefully: [`Session::run`] still
/// returns `Ok` with the best result found so far plus a [`Degradation`]
/// record, never an error. `None` (the default) means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct PhaseBudgets {
    /// Cap on fuzzer executions in the test-generation phase (tightens
    /// [`FuzzConfig::max_execs`] when smaller).
    pub fuzz_execs: Option<usize>,
    /// Cap on toolchain evaluations (full compiles + candidate simulations)
    /// in the repair phase (tightens [`SearchConfig::max_evals`]).
    pub repair_evals: Option<u64>,
}

impl PhaseBudgets {
    /// Starts a builder with no budgets set.
    pub fn builder() -> PhaseBudgetsBuilder {
        PhaseBudgetsBuilder {
            budgets: PhaseBudgets::default(),
        }
    }
}

/// Builder for [`PhaseBudgets`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseBudgetsBuilder {
    budgets: PhaseBudgets,
}

impl PhaseBudgetsBuilder {
    /// Caps fuzzer executions in the test-generation phase.
    pub fn with_fuzz_execs(mut self, v: usize) -> Self {
        self.budgets.fuzz_execs = Some(v);
        self
    }

    /// Caps toolchain evaluations in the repair phase.
    pub fn with_repair_evals(mut self, v: u64) -> Self {
        self.budgets.repair_evals = Some(v);
        self
    }

    /// Finalizes the budgets.
    pub fn build(self) -> PhaseBudgets {
        self.budgets
    }
}

impl PipelineConfig {
    /// A configuration sized for fast CI runs: shorter fuzzing and a still
    /// generous repair budget (simulated minutes, not wall-clock).
    pub fn quick() -> PipelineConfig {
        PipelineConfig::builder()
            .with_fuzz(
                FuzzConfig::builder()
                    .with_idle_stop_min(2.0)
                    .with_max_execs(1500)
                    .build(),
            )
            .with_search(
                SearchConfig::builder()
                    .with_budget_min(600.0)
                    .with_max_diff_tests(24)
                    .build(),
            )
            .build()
    }

    /// Starts a builder from the default configuration.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            cfg: PipelineConfig::default(),
        }
    }

    /// Starts a builder from this configuration.
    pub fn to_builder(self) -> PipelineConfigBuilder {
        PipelineConfigBuilder { cfg: self }
    }
}

/// Builder for [`PipelineConfig`].
///
/// ```
/// use heterogen_core::PipelineConfig;
/// use testgen::FuzzConfig;
///
/// let cfg = PipelineConfig::builder()
///     .with_fuzz(FuzzConfig::builder().with_max_execs(500).build())
///     .with_bitwidth_finitization(false)
///     .build();
/// assert_eq!(cfg.fuzz.max_execs, 500);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Sets the test-generation settings.
    pub fn with_fuzz(mut self, v: FuzzConfig) -> Self {
        self.cfg.fuzz = v;
        self
    }

    /// Sets the repair-search settings.
    pub fn with_search(mut self, v: SearchConfig) -> Self {
        self.cfg.search = v;
        self
    }

    /// Enables or disables profile-guided bitwidth finitization.
    pub fn with_bitwidth_finitization(mut self, v: bool) -> Self {
        self.cfg.bitwidth_finitization = v;
        self
    }

    /// Sets the execution engine for *every* phase (fuzzing and repair
    /// alike). Equivalent to setting [`FuzzConfig::engine`] and
    /// [`SearchConfig::engine`] individually.
    pub fn with_engine(mut self, v: ExecEngine) -> Self {
        self.cfg.fuzz.engine = v;
        self.cfg.search.engine = v;
        self
    }

    /// Sets the per-phase work budgets.
    pub fn with_budgets(mut self, v: PhaseBudgets) -> Self {
        self.cfg.budgets = v;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> PipelineConfig {
        self.cfg
    }
}

/// Summary of the test-generation phase (one Table 4 row).
#[derive(Debug, Clone, Serialize)]
pub struct TestGenSummary {
    /// Corpus size (coverage-increasing tests).
    pub tests: usize,
    /// Inputs executed in total.
    pub executed: usize,
    /// Simulated minutes spent fuzzing.
    pub minutes: f64,
    /// Final branch coverage (0..=1).
    pub coverage: f64,
}

/// Summary of the repair phase.
#[derive(Debug, Clone)]
pub struct RepairSummary {
    /// All compatibility errors fixed and behaviour preserved.
    pub success: bool,
    /// Test pass ratio of the final program.
    pub pass_ratio: f64,
    /// Mean FPGA latency (ms).
    pub fpga_latency_ms: f64,
    /// Mean CPU latency of the original (ms).
    pub cpu_latency_ms: f64,
    /// FPGA beats CPU.
    pub improved: bool,
    /// Edit families applied on the winning path.
    pub applied: Vec<String>,
    /// Simulated minutes in the search.
    pub minutes: f64,
    /// Full HLS compilations performed.
    pub full_compiles: u64,
    /// Candidates rejected by the cheap style checker.
    pub style_rejects: u64,
    /// Total edit attempts.
    pub attempts: u64,
    /// The winning [`EditScript`] — ordered parameterized edits with their
    /// anchor context ([`applied`](RepairSummary::applied) is its flat
    /// edit-family projection, kept for report compatibility).
    pub script: EditScript,
    /// Attempts spent before the first full fix, when one was found.
    pub first_fix_attempts: Option<u64>,
    /// Whether the mined-pattern candidate tier was active.
    pub mined: bool,
}

// Manual impl: the legacy fields serialize unconditionally in their
// historical order; the script-IR fields are appended only when the mined
// tier was active, so mining-off reports stay byte-identical to
// pre-EditScript output.
impl Serialize for RepairSummary {
    fn to_json_value(&self) -> serde::Value {
        let mut fields = vec![
            ("success".to_string(), self.success.to_json_value()),
            ("pass_ratio".to_string(), self.pass_ratio.to_json_value()),
            (
                "fpga_latency_ms".to_string(),
                self.fpga_latency_ms.to_json_value(),
            ),
            (
                "cpu_latency_ms".to_string(),
                self.cpu_latency_ms.to_json_value(),
            ),
            ("improved".to_string(), self.improved.to_json_value()),
            ("applied".to_string(), self.applied.to_json_value()),
            ("minutes".to_string(), self.minutes.to_json_value()),
            (
                "full_compiles".to_string(),
                self.full_compiles.to_json_value(),
            ),
            (
                "style_rejects".to_string(),
                self.style_rejects.to_json_value(),
            ),
            ("attempts".to_string(), self.attempts.to_json_value()),
        ];
        if self.mined {
            fields.push(("script".to_string(), self.script.to_json_value()));
            fields.push((
                "first_fix_attempts".to_string(),
                match self.first_fix_attempts {
                    Some(n) => n.to_json_value(),
                    None => serde::Value::Null,
                },
            ));
            fields.push(("mined".to_string(), serde::Value::Bool(true)));
        }
        serde::Value::Object(fields)
    }
}

/// Why a phase degraded instead of completing its search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationReason {
    /// The simulated-time budget ran out.
    BudgetExhausted,
    /// The [`PhaseBudgets`] work-count cap was hit.
    EvalBudgetExhausted,
    /// A permanent toolchain fault stopped the phase.
    PermanentFault,
    /// The search space was exhausted without a full fix.
    SearchExhausted,
}

impl DegradationReason {
    /// Stable snake_case name (used in the report JSON and in
    /// [`Event::PhaseDegraded`]).
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationReason::BudgetExhausted => "budget_exhausted",
            DegradationReason::EvalBudgetExhausted => "eval_budget_exhausted",
            DegradationReason::PermanentFault => "permanent_fault",
            DegradationReason::SearchExhausted => "search_exhausted",
        }
    }
}

impl std::fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One phase's record of finishing best-effort rather than completely.
///
/// A degraded pipeline still returns `Ok(PipelineReport)` carrying the best
/// candidate found; this record tells the caller (and the report JSON) what
/// was cut short and how much fault-handling work the phase absorbed.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Phase name (`"testgen"`, `"repair"`).
    pub phase: String,
    /// Why the phase stopped early.
    pub reason: DegradationReason,
    /// Human-readable detail (e.g. the permanent fault's message).
    pub detail: String,
    /// Retries performed while absorbing transient faults.
    pub retries: u64,
    /// Faults of any kind absorbed during the phase.
    pub faults: u64,
}

// Manual impl: the vendored serde derive handles plain structs, and
// `reason` needs its stable string name rather than a variant index.
impl Serialize for Degradation {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("phase".to_string(), self.phase.to_json_value()),
            (
                "reason".to_string(),
                serde::Value::Str(self.reason.as_str().to_string()),
            ),
            ("detail".to_string(), self.detail.to_json_value()),
            ("retries".to_string(), self.retries.to_json_value()),
            ("faults".to_string(), self.faults.to_json_value()),
        ])
    }
}

/// The full pipeline report for one subject.
///
/// Serializes to JSON (`serde::Serialize`) with the final program rendered
/// as pretty-printed HLS-C source — the shape behind
/// `reproduce run <subject> --json`. The JSON opens with a
/// `schema_version` field (see [`heterogen_trace::SCHEMA_VERSION`]);
/// [`wire::parse_versioned`] rejects documents from other versions.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Kernel (top function) name.
    pub kernel: String,
    /// Test-generation summary.
    pub testgen: TestGenSummary,
    /// Diagnostics on the initial HLS version.
    pub initial_errors: usize,
    /// Repair summary.
    pub repair: RepairSummary,
    /// Lines added relative to the original (paper Table 5 ΔLOC).
    pub delta_loc: usize,
    /// Original program size in lines.
    pub origin_loc: usize,
    /// The final program.
    pub program: Program,
    /// The generated test corpus (returned so failed repairs can "report an
    /// incomplete version with generated tests to guide manual edits").
    pub tests: Vec<TestCase>,
    /// The accumulated execution profile.
    pub profile: Profile,
    /// Phases that finished best-effort instead of completely (empty on a
    /// clean run).
    pub degradations: Vec<Degradation>,
}

// Manual impl: the wire format opens with `schema_version`, which is a
// format constant rather than a struct field.
impl Serialize for PipelineReport {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "schema_version".to_string(),
                heterogen_trace::SCHEMA_VERSION.to_json_value(),
            ),
            ("kernel".to_string(), self.kernel.to_json_value()),
            ("testgen".to_string(), self.testgen.to_json_value()),
            (
                "initial_errors".to_string(),
                self.initial_errors.to_json_value(),
            ),
            ("repair".to_string(), self.repair.to_json_value()),
            ("delta_loc".to_string(), self.delta_loc.to_json_value()),
            ("origin_loc".to_string(), self.origin_loc.to_json_value()),
            ("program".to_string(), self.program.to_json_value()),
            ("tests".to_string(), self.tests.to_json_value()),
            ("profile".to_string(), self.profile.to_json_value()),
            (
                "degradations".to_string(),
                self.degradations.to_json_value(),
            ),
        ])
    }
}

impl PipelineReport {
    /// Whether all compatibility errors were fixed with behaviour preserved.
    pub fn success(&self) -> bool {
        self.repair.success
    }

    /// Whether any phase finished best-effort instead of completely.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// CPU/FPGA speedup of the final version (>1 means the FPGA wins).
    pub fn speedup(&self) -> f64 {
        if self.repair.fpga_latency_ms > 0.0 {
            self.repair.cpu_latency_ms / self.repair.fpga_latency_ms
        } else {
            0.0
        }
    }
}

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The kernel's signature cannot be fuzzed.
    TestGen(String),
    /// The differential reference could not be built.
    Repair(String),
    /// The [`JobSpec`] itself is unusable (e.g. an unknown backend name).
    Spec(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::TestGen(m) => write!(f, "test generation failed: {m}"),
            PipelineError::Repair(m) => write!(f, "repair failed: {m}"),
            PipelineError::Spec(m) => write!(f, "invalid job spec: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Resolves a backend name from a [`JobSpec`] to a live [`Toolchain`].
///
/// Accepts every name [`SimBackend::by_name`] knows. The server and
/// [`Session::run`] share this resolver, so a spec behaves identically
/// whichever path executes it.
///
/// # Errors
///
/// [`PipelineError::Spec`] for unknown names, listing the canonical ones.
pub fn resolve_backend(name: &str) -> Result<Arc<dyn Toolchain>, PipelineError> {
    SimBackend::by_name(name)
        .map(|b| Arc::new(b) as Arc<dyn Toolchain>)
        .ok_or_else(|| {
            PipelineError::Spec(format!(
                "unknown backend `{name}` (known: {})",
                SimBackend::names().join(", ")
            ))
        })
}

/// Where a job's test suite comes from.
#[derive(Debug, Clone)]
pub enum TestSource {
    /// Generate the suite by fuzzing from these seed inputs (paper §4,
    /// Algorithm 1). The seeds may be empty.
    Fuzz(Vec<TestCase>),
    /// Use an externally supplied suite (the Figure 8 "pre-existing tests
    /// only" comparison); the execution profile is collected by replay.
    Existing(Vec<TestCase>),
}

/// One unit of transpilation work, shared by [`Session::run`] and the job
/// server.
///
/// `#[non_exhaustive]`: construct one with [`JobSpec::fuzz`] /
/// [`JobSpec::with_tests`] or the full [`JobSpec::builder`], so new knobs
/// (backend, seed, budgets, engine, client) are not semver breaks. All
/// override fields default to "inherit from the session": a bare spec
/// behaves exactly as the session is configured.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct JobSpec {
    /// The original C program.
    pub program: Program,
    /// The kernel (top function) name.
    pub kernel: String,
    /// Where the differential test suite comes from.
    pub tests: TestSource,
    /// Backend name override (see [`resolve_backend`]); `None` inherits the
    /// session's backend.
    pub backend: Option<String>,
    /// RNG seed override for *both* the fuzzer and the repair search;
    /// `None` inherits the configured seeds.
    pub seed: Option<u64>,
    /// Per-phase budget override; `None` inherits the session's budgets.
    pub budgets: Option<PhaseBudgets>,
    /// Execution-engine override for every phase; `None` inherits the
    /// configured engines. Both engines produce identical reports — this
    /// knob trades wall-clock speed (bytecode) against the reference
    /// implementation (tree-walk, for differential testing).
    pub engine: Option<ExecEngine>,
    /// Client identity for the server's fair-share admission. The library
    /// path ignores it.
    pub client: String,
    /// Persistent-store directory override: the job opens (creating if
    /// absent) a crash-safe [`Store`] there for verdict memos and fuzz
    /// warm start. `None` inherits the session's store (usually none). A
    /// warm store never changes the report or trace — only wall time.
    pub store_dir: Option<PathBuf>,
    /// Enables the mined-pattern candidate tier: fix patterns persisted in
    /// (or mined on the fly from) the job's [`Store`] are tried ahead of
    /// the static precedence order, and the winning [`EditScript`] plus
    /// first-fix attempt counts are added to the report. Off (the default)
    /// the report and trace are byte-identical to a run without this
    /// field. Requires a store; without one the flag is inert.
    pub mined: bool,
}

/// The client id a [`JobSpec`] carries unless [`JobSpecBuilder::client`]
/// sets one.
pub const ANONYMOUS_CLIENT: &str = "anonymous";

impl JobSpec {
    /// A spec whose test suite is fuzzed from `seeds` (which may be empty).
    pub fn fuzz(program: Program, kernel: impl Into<String>, seeds: Vec<TestCase>) -> JobSpec {
        JobSpec::builder(program, kernel).seeds(seeds).build()
    }

    /// A spec that runs against an externally supplied test suite.
    pub fn with_tests(
        program: Program,
        kernel: impl Into<String>,
        tests: Vec<TestCase>,
    ) -> JobSpec {
        JobSpec::builder(program, kernel)
            .existing_tests(tests)
            .build()
    }

    /// Starts a builder for `program`'s `kernel`; the test source defaults
    /// to fuzzing from no seeds.
    pub fn builder(program: Program, kernel: impl Into<String>) -> JobSpecBuilder {
        JobSpecBuilder {
            spec: JobSpec {
                program,
                kernel: kernel.into(),
                tests: TestSource::Fuzz(Vec::new()),
                backend: None,
                seed: None,
                budgets: None,
                engine: None,
                client: ANONYMOUS_CLIENT.to_string(),
                store_dir: None,
                mined: false,
            },
        }
    }
}

/// Builder for [`JobSpec`].
///
/// ```
/// use heterogen_core::{JobSpec, PhaseBudgets};
///
/// let program = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
/// let spec = JobSpec::builder(program, "kernel")
///     .backend("embedded")
///     .seed(42)
///     .budgets(PhaseBudgets::builder().with_repair_evals(500).build())
///     .client("team-a")
///     .build();
/// assert_eq!(spec.client, "team-a");
/// assert_eq!(spec.seed, Some(42));
/// ```
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    /// Fuzzes the test suite from these seed inputs (may be empty).
    pub fn seeds(mut self, seeds: Vec<TestCase>) -> Self {
        self.spec.tests = TestSource::Fuzz(seeds);
        self
    }

    /// Uses an externally supplied test suite instead of fuzzing.
    pub fn existing_tests(mut self, tests: Vec<TestCase>) -> Self {
        self.spec.tests = TestSource::Existing(tests);
        self
    }

    /// Overrides the backend by name (see [`resolve_backend`]).
    pub fn backend(mut self, name: impl Into<String>) -> Self {
        self.spec.backend = Some(name.into());
        self
    }

    /// Overrides the RNG seed for both the fuzzer and the repair search.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = Some(seed);
        self
    }

    /// Overrides the per-phase work budgets.
    pub fn budgets(mut self, budgets: PhaseBudgets) -> Self {
        self.spec.budgets = Some(budgets);
        self
    }

    /// Overrides the execution engine for every phase.
    pub fn engine(mut self, engine: ExecEngine) -> Self {
        self.spec.engine = Some(engine);
        self
    }

    /// Names the submitting client (for the server's fair-share admission).
    pub fn client(mut self, client: impl Into<String>) -> Self {
        self.spec.client = client.into();
        self
    }

    /// Points the job at a persistent-store directory (see
    /// [`JobSpec::store_dir`]).
    pub fn store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spec.store_dir = Some(dir.into());
        self
    }

    /// Enables the mined-pattern candidate tier (see [`JobSpec::mined`]).
    pub fn mined(mut self, v: bool) -> Self {
        self.spec.mined = v;
        self
    }

    /// Finalizes the spec.
    pub fn build(self) -> JobSpec {
        self.spec
    }
}

/// A configured pipeline instance: a [`PipelineConfig`] plus a
/// [`TraceSink`] every phase reports through. Build one with
/// [`HeteroGen::builder`].
///
/// Events are emitted from the pipeline's sequential sections only (the
/// merge phases of the fuzzer and the repair search, and the phase
/// transitions here), so for a fixed job the event stream is byte-identical
/// at every thread count.
#[derive(Clone)]
pub struct Session {
    config: PipelineConfig,
    sink: Arc<dyn TraceSink>,
    faults: Arc<dyn FaultInjector>,
    backend: Arc<dyn Toolchain>,
    store: Option<Arc<Store>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("sink_enabled", &self.sink.enabled())
            .field("faults_enabled", &self.faults.enabled())
            .field("backend", &self.backend.info().name)
            .field("store_enabled", &self.store.is_some())
            .finish()
    }
}

/// Builder for [`Session`].
#[derive(Clone)]
pub struct SessionBuilder {
    config: PipelineConfig,
    sink: Arc<dyn TraceSink>,
    faults: Arc<dyn FaultInjector>,
    backend: Arc<dyn Toolchain>,
    store: Option<Arc<Store>>,
}

impl SessionBuilder {
    /// Sets the pipeline configuration (default: [`PipelineConfig::default`]).
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the trace sink (default: [`NullSink`], i.e. tracing off).
    pub fn sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Sets the fault injector (default: [`NoFaults`], i.e. chaos off).
    ///
    /// The repair phase threads the injector through every toolchain
    /// invocation; a deterministic plan
    /// ([`heterogen_faults::FaultPlan`]) makes a whole pipeline run
    /// reproducible chaos.
    pub fn faults(mut self, faults: Arc<dyn FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the HLS toolchain backend every check, compile, and simulation
    /// goes through (default: [`SimBackend::default_profile`]). Pick another
    /// device profile — e.g. [`SimBackend::embedded_profile`] — or any
    /// custom [`Toolchain`] implementation to retarget the whole pipeline.
    pub fn backend<B: Toolchain + 'static>(mut self, backend: B) -> Self {
        self.backend = Arc::new(backend);
        self
    }

    /// Attaches a persistent evaluation store (default: none). Verdicts
    /// and fuzz campaigns are memoized across process runs; because every
    /// phase bills simulated cost independently of how an evaluation was
    /// satisfied, a warm store changes wall-clock time only — reports and
    /// traces stay byte-identical to a cold run.
    pub fn store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> Session {
        Session {
            config: self.config,
            sink: self.sink,
            faults: self.faults,
            backend: self.backend,
            store: self.store,
        }
    }
}

/// [`TraceSink`] shim that captures `FuzzRoundEnd` tuples for the
/// persistent store while forwarding everything to the real sink. Always
/// enabled so the generator constructs the events; forwarding still honors
/// the inner sink's gate, so the observable trace is unchanged.
struct RoundRecorder<'a> {
    inner: &'a dyn TraceSink,
    rounds: Mutex<Vec<FuzzRound>>,
}

impl TraceSink for RoundRecorder<'_> {
    fn emit(&self, event: &Event) {
        if let Event::FuzzRoundEnd {
            round,
            executed,
            corpus,
            new_coverage,
            at_min,
        } = event
        {
            self.rounds.lock().unwrap().push(FuzzRound {
                round: *round,
                executed: *executed,
                corpus: *corpus,
                new_coverage: *new_coverage,
                at_min: *at_min,
            });
        }
        if self.inner.enabled() {
            self.inner.emit(event);
        }
    }
}

impl Session {
    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Test generation with persistent-corpus warm start: a recorded
    /// campaign for the same `(program, kernel, seeds, config)` key is
    /// replayed — corpus, profile, counters, and the exact `FuzzRoundEnd`
    /// event stream — without executing a single input; a cold campaign
    /// runs normally and is then recorded.
    fn fuzz_with_warm_start(
        &self,
        original: &Program,
        kernel: &str,
        seeds: Vec<TestCase>,
        fuzz_cfg: &FuzzConfig,
        sink: &dyn TraceSink,
        store: &Option<Arc<Store>>,
    ) -> Result<FuzzReport, PipelineError> {
        let Some(store) = store else {
            return testgen::fuzz_traced(original, kernel, seeds, fuzz_cfg, sink)
                .map_err(PipelineError::TestGen);
        };
        let key = heterogen_store::fuzz_campaign_key(
            minic::fingerprint_program(original),
            kernel,
            &seeds,
            fuzz_cfg,
        );
        if let Some(rec) = store.get_corpus(&key) {
            if sink.enabled() {
                for r in &rec.rounds {
                    sink.emit(&Event::FuzzRoundEnd {
                        round: r.round,
                        executed: r.executed,
                        corpus: r.corpus,
                        new_coverage: r.new_coverage,
                        at_min: r.at_min,
                    });
                }
            }
            return Ok(FuzzReport {
                corpus: rec.corpus,
                executed: rec.executed,
                sim_minutes: rec.sim_minutes,
                coverage: rec.coverage,
                profile: rec.profile,
                peak_heap_cells: rec.peak_heap_cells,
                failing: rec.failing,
            });
        }
        let recorder = RoundRecorder {
            inner: sink,
            rounds: Mutex::new(Vec::new()),
        };
        let report = testgen::fuzz_traced(original, kernel, seeds, fuzz_cfg, &recorder)
            .map_err(PipelineError::TestGen)?;
        store.put_corpus(
            &key,
            &CorpusRecord {
                corpus: report.corpus.clone(),
                executed: report.executed,
                sim_minutes: report.sim_minutes,
                coverage: report.coverage,
                profile: report.profile.clone(),
                peak_heap_cells: report.peak_heap_cells,
                failing: report.failing.clone(),
                rounds: recorder.rounds.into_inner().unwrap(),
            },
        );
        Ok(report)
    }

    /// Runs the full pipeline on one [`JobSpec`].
    ///
    /// Spec-level overrides — backend name, RNG seed, budgets, engine —
    /// take precedence over the session's configuration; a spec with no
    /// overrides behaves exactly as the session is configured.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when the spec is invalid, the kernel
    /// cannot be fuzzed, or the reference execution fails outright.
    pub fn run(&self, job: JobSpec) -> Result<PipelineReport, PipelineError> {
        let sink = self.sink.as_ref();
        let JobSpec {
            program: original,
            kernel,
            tests,
            backend,
            seed,
            budgets,
            engine,
            client: _,
            store_dir,
            mined,
        } = job;
        let backend: Arc<dyn Toolchain> = match backend {
            None => self.backend.clone(),
            Some(name) => resolve_backend(&name)?,
        };
        let store: Option<Arc<Store>> = match store_dir {
            Some(dir) => Some(Arc::new(Store::open(&dir).map_err(|e| {
                PipelineError::Spec(format!("persistent store at {}: {e}", dir.display()))
            })?)),
            None => self.store.clone(),
        };
        let budgets = budgets.unwrap_or(self.config.budgets);
        if sink.enabled() {
            sink.emit(&Event::PhaseEnter {
                phase: "testgen".to_string(),
                at_min: 0.0,
            });
        }
        let mut degradations: Vec<Degradation> = Vec::new();
        // 1. Test generation (paper §4, Algorithm 1) — or replay of a
        //    pre-existing suite to collect the profile.
        let mut fuzz_cfg = self.config.fuzz;
        if let Some(seed) = seed {
            fuzz_cfg.rng_seed = seed;
        }
        if let Some(engine) = engine {
            fuzz_cfg.engine = engine;
        }
        let fuzz_cap = budgets.fuzz_execs.filter(|cap| *cap < fuzz_cfg.max_execs);
        if let Some(cap) = fuzz_cap {
            fuzz_cfg.max_execs = cap;
        }
        let (tests, profile, fuzz_report) = match tests {
            TestSource::Fuzz(seeds) => {
                let fuzz_report =
                    self.fuzz_with_warm_start(&original, &kernel, seeds, &fuzz_cfg, sink, &store)?;
                (
                    fuzz_report.corpus.clone(),
                    fuzz_report.profile.clone(),
                    Some(fuzz_report),
                )
            }
            TestSource::Existing(tests) => {
                let mut profile = Profile::new();
                let prepared = minic_exec::Prepared::new(fuzz_cfg.engine, &original);
                for t in &tests {
                    if let Ok(mut m) = prepared.runner(minic_exec::MachineConfig::cpu()) {
                        let _ = m.run_kernel(&kernel, t);
                        profile.merge(&m.profile());
                    }
                }
                (tests, profile, None)
            }
        };
        let testgen_min = fuzz_report.as_ref().map(|r| r.sim_minutes).unwrap_or(0.0);
        if sink.enabled() {
            sink.emit(&Event::PhaseExit {
                phase: "testgen".to_string(),
                at_min: testgen_min,
                elapsed_min: testgen_min,
            });
        }
        // A budget tighter than the configured exec limit that the fuzzer
        // actually ran into degrades the phase: the corpus is whatever
        // coverage the capped run found, not the idle-stop fixpoint.
        if let (Some(cap), Some(r)) = (fuzz_cap, fuzz_report.as_ref()) {
            if r.executed >= cap {
                degradations.push(Degradation {
                    phase: "testgen".to_string(),
                    reason: DegradationReason::EvalBudgetExhausted,
                    detail: format!("fuzzing stopped at the {cap}-execution budget"),
                    retries: 0,
                    faults: 0,
                });
                if sink.enabled() {
                    sink.emit(&Event::PhaseDegraded {
                        phase: "testgen".to_string(),
                        reason: DegradationReason::EvalBudgetExhausted.as_str().to_string(),
                        at_min: testgen_min,
                    });
                }
            }
        }

        // 2. Initial HLS version with estimated types.
        let broken = if self.config.bitwidth_finitization {
            initial_version(&original, &profile)
        } else {
            original.clone()
        };
        let initial_errors = backend.diagnose(&broken).len();

        // 3–5. Iterative repair with differential testing.
        if sink.enabled() {
            sink.emit(&Event::PhaseEnter {
                phase: "repair".to_string(),
                at_min: testgen_min,
            });
        }
        let mut search_cfg = self.config.search.clone();
        if let Some(seed) = seed {
            search_cfg.rng_seed = seed;
        }
        if let Some(engine) = engine {
            search_cfg.engine = engine;
        }
        search_cfg.max_evals = match (search_cfg.max_evals, budgets.repair_evals) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // The mined tier feeds off the store: persisted patterns if a
        // `reproduce mine` pass recorded them, else patterns mined on the
        // fly from the winning scripts of earlier successful runs.
        if mined {
            if let Some(store) = &store {
                let mut patterns = store.patterns();
                if patterns.is_empty() {
                    let scripts: Vec<EditScript> =
                        store.scripts().into_iter().map(|(_, s)| s).collect();
                    patterns = repair::mine::mine_patterns(&scripts);
                }
                search_cfg.mined = Arc::new(patterns);
            }
        }
        let outcome: RepairOutcome = repair::repair_persistent(
            &original,
            broken,
            &kernel,
            &tests,
            &profile,
            &search_cfg,
            sink,
            self.faults.as_ref(),
            backend.as_ref(),
            store.clone().map(|s| s as Arc<dyn VerdictStore>),
        )
        .map_err(PipelineError::Repair)?;
        // Every successful repair banks its winning script — whether or not
        // the mined tier was active — so any store accumulates the raw
        // material `reproduce mine` and later mined runs learn from.
        if outcome.success {
            if let Some(store) = &store {
                store.put_script(
                    &ScriptKey {
                        program_fp: minic::fingerprint_program(&original),
                        kernel: kernel.clone(),
                        backend: backend.info().name.clone(),
                    },
                    &outcome.script,
                );
            }
        }
        let repair_end_min = testgen_min + outcome.stats.elapsed_min;
        if sink.enabled() {
            sink.emit(&Event::PhaseExit {
                phase: "repair".to_string(),
                at_min: repair_end_min,
                elapsed_min: outcome.stats.elapsed_min,
            });
        }
        // A permanent fault always degrades the phase (the search was cut
        // off, even if a repair had already been found); the other early
        // stops only matter when the search did not converge.
        let repair_degradation = match (&outcome.stop, outcome.success) {
            (SearchStop::PermanentFault(detail), _) => {
                Some((DegradationReason::PermanentFault, detail.clone()))
            }
            (SearchStop::Converged, _) | (_, true) => None,
            (SearchStop::EvalBudgetExhausted, false) => Some((
                DegradationReason::EvalBudgetExhausted,
                "toolchain evaluation budget exhausted before convergence".to_string(),
            )),
            (SearchStop::BudgetExpired, false) => Some((
                DegradationReason::BudgetExhausted,
                "simulated time budget expired before convergence".to_string(),
            )),
            (SearchStop::FrontierExhausted, false) => Some((
                DegradationReason::SearchExhausted,
                "candidate frontier exhausted without a full fix".to_string(),
            )),
        };
        if let Some((reason, detail)) = repair_degradation {
            degradations.push(Degradation {
                phase: "repair".to_string(),
                reason,
                detail,
                retries: outcome.resilience.retries,
                faults: outcome.resilience.transient_faults
                    + outcome.resilience.permanent_faults
                    + outcome.resilience.crashes,
            });
            if sink.enabled() {
                sink.emit(&Event::PhaseDegraded {
                    phase: "repair".to_string(),
                    reason: reason.as_str().to_string(),
                    at_min: repair_end_min,
                });
            }
        }

        let delta_loc = minic::diff::line_diff(
            &minic::print_program(&original),
            &minic::print_program(&outcome.program),
        )
        .delta_loc();

        Ok(PipelineReport {
            kernel,
            testgen: TestGenSummary {
                tests: tests.len(),
                executed: fuzz_report
                    .as_ref()
                    .map(|r| r.executed)
                    .unwrap_or(tests.len()),
                minutes: testgen_min,
                coverage: fuzz_report.as_ref().map(|r| r.coverage).unwrap_or(0.0),
            },
            initial_errors,
            repair: RepairSummary {
                success: outcome.success,
                pass_ratio: outcome.pass_ratio,
                fpga_latency_ms: outcome.fpga_latency_ms,
                cpu_latency_ms: outcome.cpu_latency_ms,
                improved: outcome.improved,
                applied: outcome.applied.clone(),
                minutes: outcome.stats.elapsed_min,
                full_compiles: outcome.stats.full_compiles,
                style_rejects: outcome.stats.style_rejects,
                attempts: outcome.stats.attempts,
                script: outcome.script.clone(),
                first_fix_attempts: outcome.stats.first_success_attempts,
                mined: !search_cfg.mined.is_empty(),
            },
            delta_loc,
            origin_loc: minic::loc(&original),
            program: outcome.program,
            tests,
            profile,
            degradations,
        })
    }
}

/// The transpiler entry point.
///
/// The pipeline is driven through a [`Session`] built with
/// [`HeteroGen::builder`].
#[derive(Debug, Clone, Default)]
pub struct HeteroGen {
    config: PipelineConfig,
}

impl HeteroGen {
    /// Starts a [`Session`] builder (tracing off, chaos off, and the default
    /// [`SimBackend`] device profile).
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            config: PipelineConfig::default(),
            sink: Arc::new(NullSink),
            faults: Arc::new(NoFaults),
            backend: Arc::new(SimBackend::default_profile()),
            store: None,
        }
    }

    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> HeteroGen {
        HeteroGen { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

/// Builds the initial HLS version: profile-guided bitwidth finitization of
/// local integer scalars (paper §4 "Initial HLS-C Version Generation").
///
/// Only *locals* are narrowed — parameters keep their interface types, and
/// narrowing never widens an already-narrow declaration. The profiled range
/// covers every fuzzed execution, so narrowing is behaviour-preserving on
/// the generated suite (over-estimation, never under-estimation, matching
/// the paper's §6.5 discussion).
pub fn initial_version(p: &Program, profile: &Profile) -> Program {
    let mut out = p.clone();
    for ((function, var), range) in &profile.int_ranges {
        let Some(f) = p.function(function) else {
            continue;
        };
        if f.params.iter().any(|q| &q.name == var) {
            continue;
        }
        let Some(declared) = minic::edit::declared_type(p, Some(function), var) else {
            continue;
        };
        let Type::Int { width, .. } = declared else {
            continue;
        };
        let (bits, signed) = range.required_bits();
        if bits < width.bits() {
            minic::edit::rewrite_decl_type(
                &mut out,
                var,
                Some(function),
                Type::FpgaInt { bits, signed },
            );
        }
    }
    out
}

/// Versioned wire-format helpers for server clients.
///
/// Every serialized [`PipelineReport`] opens with a `schema_version` field
/// and every JSONL trace stream opens with a schema header line (both carry
/// [`heterogen_trace::SCHEMA_VERSION`]). These helpers parse such documents
/// and *reject* versions they do not understand, so a client talking to a
/// newer server fails loudly instead of misreading fields.
pub mod wire {
    use heterogen_trace::SCHEMA_VERSION;

    /// Why a wire document was rejected.
    #[derive(Debug, Clone, PartialEq)]
    pub enum WireError {
        /// The document is not valid JSON (or the trace stream is empty).
        Malformed(String),
        /// No `schema_version` field / schema header line was found.
        MissingVersion,
        /// The document declares a version this build does not speak.
        UnsupportedVersion {
            /// The version the document declared.
            found: i128,
            /// The version this build supports.
            supported: u32,
        },
    }

    impl std::fmt::Display for WireError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WireError::Malformed(m) => write!(f, "malformed wire document: {m}"),
                WireError::MissingVersion => write!(f, "wire document carries no schema_version"),
                WireError::UnsupportedVersion { found, supported } => write!(
                    f,
                    "unsupported schema_version {found} (this build speaks {supported})"
                ),
            }
        }
    }

    impl std::error::Error for WireError {}

    fn check_version(found: i128) -> Result<(), WireError> {
        if found == i128::from(SCHEMA_VERSION) {
            Ok(())
        } else {
            Err(WireError::UnsupportedVersion {
                found,
                supported: SCHEMA_VERSION,
            })
        }
    }

    /// Parses a versioned JSON document (e.g. a serialized
    /// [`PipelineReport`](super::PipelineReport)), verifying its
    /// `schema_version` matches this build's.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed JSON, a missing version field, or a
    /// version mismatch.
    pub fn parse_versioned(json: &str) -> Result<serde::Value, WireError> {
        let doc = serde_json::from_str(json).map_err(|e| WireError::Malformed(e.to_string()))?;
        let found = doc
            .get("schema_version")
            .and_then(serde::Value::as_i128)
            .ok_or(WireError::MissingVersion)?;
        check_version(found)?;
        Ok(doc)
    }

    /// Verifies a JSONL trace stream opens with a schema header line this
    /// build understands.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the stream is empty, the first line is not a
    /// schema header, or the version does not match.
    pub fn check_trace_header(stream: &str) -> Result<(), WireError> {
        let first = stream
            .lines()
            .next()
            .ok_or_else(|| WireError::Malformed("empty trace stream".to_string()))?;
        let doc = serde_json::from_str(first).map_err(|e| WireError::Malformed(e.to_string()))?;
        if doc.get("event").and_then(serde::Value::as_str) != Some("schema") {
            return Err(WireError::MissingVersion);
        }
        let found = doc
            .get("schema_version")
            .and_then(serde::Value::as_i128)
            .ok_or(WireError::MissingVersion)?;
        check_version(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic_exec::ArgValue;

    fn dump_on_failure(report: &PipelineReport) -> bool {
        if !report.success() {
            eprintln!(
                "repair failed: pass={} applied={:?} initial_errors={}",
                report.repair.pass_ratio, report.repair.applied, report.initial_errors
            );
        }
        report.success()
    }

    #[test]
    fn initial_version_narrows_profiled_locals() {
        let p =
            minic::parse("int kernel(int x) { int ret = 0; ret = 83; return ret + x; }").unwrap();
        let mut profile = Profile::new();
        profile.record_int("kernel", "ret", 0);
        profile.record_int("kernel", "ret", 83);
        let q = initial_version(&p, &profile);
        let src = minic::print_program(&q);
        assert!(src.contains("fpga_uint<7> ret"), "{src}");
    }

    #[test]
    fn initial_version_keeps_parameters() {
        let p = minic::parse("int kernel(int x) { return x; }").unwrap();
        let mut profile = Profile::new();
        profile.record_int("kernel", "x", 3);
        let q = initial_version(&p, &profile);
        assert_eq!(minic::print_program(&p), minic::print_program(&q));
    }

    #[test]
    fn pipeline_repairs_and_reports() {
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.5;
        cfg.fuzz.max_execs = 200;
        let session = HeteroGen::builder().config(cfg).build();
        let report = session.run(JobSpec::fuzz(p, "kernel", vec![])).unwrap();
        assert!(dump_on_failure(&report));
        assert!(report.testgen.tests > 0);
        assert!(report.delta_loc <= 10);
        assert!(SimBackend::default_profile()
            .diagnose(&report.program)
            .is_empty());
    }

    #[test]
    fn pipeline_with_seeds() {
        let p = minic::parse(
            "int kernel(int a[4]) { int s = 0; for (int i = 0; i < 4; i++) { s += a[i]; } return s; }",
        )
        .unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.3;
        cfg.fuzz.max_execs = 200;
        let seeds = vec![vec![ArgValue::IntArray(vec![1, 2, 3, 4])]];
        let session = HeteroGen::builder().config(cfg).build();
        let report = session.run(JobSpec::fuzz(p, "kernel", seeds)).unwrap();
        assert!(dump_on_failure(&report));
    }

    #[test]
    fn existing_tests_mode_profiles_by_replay() {
        let p = minic::parse("int kernel(int x) { int r = 0; if (x > 0) { r = x; } return r; }")
            .unwrap();
        let cfg = PipelineConfig::quick();
        let tests = vec![vec![ArgValue::Int(5)], vec![ArgValue::Int(-1)]];
        let session = HeteroGen::builder().config(cfg).build();
        let report = session
            .run(JobSpec::with_tests(p, "kernel", tests))
            .unwrap();
        assert!(dump_on_failure(&report));
        assert_eq!(report.testgen.tests, 2);
        assert!(report.profile.range_of("kernel", "r").is_some());
    }

    #[test]
    fn speedup_computation() {
        let p = minic::parse("int kernel(int x) { return x; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let session = HeteroGen::builder().config(cfg).build();
        let report = session.run(JobSpec::fuzz(p, "kernel", vec![])).unwrap();
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn embedded_backend_runs_the_pipeline_end_to_end() {
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.5;
        cfg.fuzz.max_execs = 200;
        let session = HeteroGen::builder()
            .config(cfg.clone())
            .backend(SimBackend::embedded_profile())
            .build();
        assert!(format!("{session:?}").contains("hls_sim-embedded"));
        let report = session
            .run(JobSpec::fuzz(p.clone(), "kernel", vec![]))
            .unwrap();
        assert!(dump_on_failure(&report));
        // The embedded compile farm is slower, so the same repair consumes
        // more of the simulated budget than the datacenter profile does.
        let default_report = HeteroGen::builder()
            .config(cfg)
            .build()
            .run(JobSpec::fuzz(p, "kernel", vec![]))
            .unwrap();
        assert!(report.repair.minutes > default_report.repair.minutes);
    }

    #[test]
    fn eval_budget_exhaustion_degrades_instead_of_erroring() {
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        // One toolchain evaluation is spent on the initial compile, so the
        // search stops before repairing anything.
        cfg.budgets = PhaseBudgets::builder().with_repair_evals(1).build();
        let session = HeteroGen::builder().config(cfg).build();
        let report = session
            .run(JobSpec::fuzz(p, "kernel", vec![]))
            .expect("budget exhaustion must not be an error");
        assert!(!report.success());
        assert!(report.degraded());
        let d = &report.degradations[0];
        assert_eq!(d.phase, "repair");
        assert_eq!(d.reason, DegradationReason::EvalBudgetExhausted);
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            json.contains(r#""reason":"eval_budget_exhausted""#),
            "{json}"
        );
    }

    #[test]
    fn fuzz_exec_budget_degrades_testgen_phase() {
        let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        // An idle-stop far beyond what 40 executions can reach, so the
        // budget is the binding constraint.
        cfg.fuzz.idle_stop_min = 50.0;
        cfg.fuzz.max_execs = 100_000;
        cfg.budgets = PhaseBudgets::builder().with_fuzz_execs(40).build();
        let session = HeteroGen::builder().config(cfg).build();
        let report = session.run(JobSpec::fuzz(p, "kernel", vec![])).unwrap();
        assert!(report
            .degradations
            .iter()
            .any(|d| d.phase == "testgen" && d.reason == DegradationReason::EvalBudgetExhausted));
        assert!(report.testgen.executed <= 40 + 8, "cap roughly respected");
    }

    #[test]
    fn permanent_fault_degrades_the_repair_phase() {
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let plan = heterogen_faults::FaultPlan::builder(11)
            .with_permanent_rate(1.0)
            .build();
        let session = HeteroGen::builder()
            .config(cfg)
            .faults(Arc::new(plan))
            .build();
        let report = session
            .run(JobSpec::fuzz(p, "kernel", vec![]))
            .expect("a permanent fault degrades, it does not error");
        assert!(report
            .degradations
            .iter()
            .any(|d| d.phase == "repair" && d.reason == DegradationReason::PermanentFault));
    }

    #[test]
    fn clean_runs_report_no_degradations() {
        let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let session = HeteroGen::builder().config(cfg).build();
        let report = session.run(JobSpec::fuzz(p, "kernel", vec![])).unwrap();
        assert!(report.success());
        assert!(!report.degraded());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains(r#""degradations":[]"#), "{json}");
    }

    #[test]
    fn bare_spec_inherits_every_session_setting() {
        let spec = JobSpec::fuzz(
            minic::parse("int kernel(int x) { return x; }").unwrap(),
            "kernel",
            vec![],
        );
        assert_eq!(spec.kernel, "kernel");
        assert!(matches!(&spec.tests, TestSource::Fuzz(s) if s.is_empty()));
        assert_eq!(spec.backend, None);
        assert_eq!(spec.seed, None);
        assert_eq!(spec.budgets, None);
        assert_eq!(spec.engine, None);
        assert_eq!(spec.client, ANONYMOUS_CLIENT);
        assert!(!spec.mined);
    }

    #[test]
    fn engine_override_produces_identical_reports() {
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.3;
        cfg.fuzz.max_execs = 150;
        let session = HeteroGen::builder().config(cfg).build();
        let bytecode = session
            .run(
                JobSpec::builder(p.clone(), "kernel")
                    .engine(ExecEngine::Bytecode)
                    .build(),
            )
            .unwrap();
        let treewalk = session
            .run(
                JobSpec::builder(p, "kernel")
                    .engine(ExecEngine::TreeWalk)
                    .build(),
            )
            .unwrap();
        assert_eq!(
            serde_json::to_string(&bytecode).unwrap(),
            serde_json::to_string(&treewalk).unwrap(),
            "the two engines must produce byte-identical reports"
        );
    }

    #[test]
    fn spec_seed_override_matches_reconfigured_session() {
        let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let session = HeteroGen::builder().config(cfg.clone()).build();
        let via_spec = session
            .run(JobSpec::builder(p.clone(), "kernel").seed(42).build())
            .unwrap();

        let mut reconfigured = cfg;
        reconfigured.fuzz.rng_seed = 42;
        reconfigured.search.rng_seed = 42;
        let direct = HeteroGen::builder()
            .config(reconfigured)
            .build()
            .run(JobSpec::fuzz(p, "kernel", vec![]))
            .unwrap();
        assert_eq!(
            serde_json::to_string(&via_spec).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "a spec seed must behave exactly like configuring both RNGs"
        );
    }

    #[test]
    fn spec_backend_override_matches_session_backend() {
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.5;
        cfg.fuzz.max_execs = 200;
        let via_spec = HeteroGen::builder()
            .config(cfg.clone())
            .build()
            .run(
                JobSpec::builder(p.clone(), "kernel")
                    .backend("embedded")
                    .build(),
            )
            .unwrap();
        let via_session = HeteroGen::builder()
            .config(cfg)
            .backend(SimBackend::embedded_profile())
            .build()
            .run(JobSpec::fuzz(p, "kernel", vec![]))
            .unwrap();
        assert_eq!(
            serde_json::to_string(&via_spec).unwrap(),
            serde_json::to_string(&via_session).unwrap()
        );
    }

    #[test]
    fn unknown_backend_is_a_spec_error() {
        let p = minic::parse("int kernel(int x) { return x; }").unwrap();
        let session = HeteroGen::builder().config(PipelineConfig::quick()).build();
        let err = session
            .run(JobSpec::builder(p, "kernel").backend("asic-9000").build())
            .unwrap_err();
        assert!(matches!(err, PipelineError::Spec(_)), "{err}");
        assert!(err.to_string().contains("asic-9000"));
    }

    #[test]
    fn spec_budgets_override_the_session_budgets() {
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let session = HeteroGen::builder().config(cfg).build();
        let spec = JobSpec::builder(p, "kernel")
            .budgets(PhaseBudgets::builder().with_repair_evals(1).build())
            .build();
        let report = session.run(spec).unwrap();
        assert!(report
            .degradations
            .iter()
            .any(|d| d.phase == "repair" && d.reason == DegradationReason::EvalBudgetExhausted));
    }

    #[test]
    fn report_json_is_versioned_and_round_trips() {
        let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let session = HeteroGen::builder().config(cfg).build();
        let report = session.run(JobSpec::fuzz(p, "kernel", vec![])).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let doc = wire::parse_versioned(&json).expect("current version parses");
        assert_eq!(
            doc.get("kernel").and_then(serde::Value::as_str),
            Some("kernel")
        );
        assert_eq!(
            doc.get("schema_version").and_then(serde::Value::as_i128),
            Some(i128::from(heterogen_trace::SCHEMA_VERSION))
        );
    }

    #[test]
    fn wire_rejects_bumped_and_missing_versions() {
        let bumped = format!(
            "{{\"schema_version\": {}, \"kernel\": \"k\"}}",
            heterogen_trace::SCHEMA_VERSION + 1
        );
        assert_eq!(
            wire::parse_versioned(&bumped),
            Err(wire::WireError::UnsupportedVersion {
                found: i128::from(heterogen_trace::SCHEMA_VERSION + 1),
                supported: heterogen_trace::SCHEMA_VERSION,
            })
        );
        assert_eq!(
            wire::parse_versioned("{\"kernel\": \"k\"}"),
            Err(wire::WireError::MissingVersion)
        );
        assert!(matches!(
            wire::parse_versioned("not json"),
            Err(wire::WireError::Malformed(_))
        ));
    }

    #[test]
    fn wire_checks_trace_headers() {
        let sink = heterogen_trace::JsonlSink::new();
        wire::check_trace_header(&sink.contents()).expect("fresh stream carries the header");
        assert_eq!(
            wire::check_trace_header(
                "{\"event\":\"schema\",\"schema_version\":999}\n{\"event\":\"phase_enter\"}\n"
            ),
            Err(wire::WireError::UnsupportedVersion {
                found: 999,
                supported: heterogen_trace::SCHEMA_VERSION,
            })
        );
        assert_eq!(
            wire::check_trace_header("{\"event\":\"phase_enter\",\"phase\":\"x\"}\n"),
            Err(wire::WireError::MissingVersion)
        );
        assert!(wire::check_trace_header("").is_err());
    }

    #[test]
    fn mined_tier_banks_scripts_and_extends_the_report() {
        let dir = std::env::temp_dir().join(format!("hg-core-mined-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p =
            minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let session = HeteroGen::builder().config(cfg).build();
        // A plain store run banks the winning script but reports nothing new.
        let cold = session
            .run(
                JobSpec::builder(p.clone(), "kernel")
                    .store_dir(&dir)
                    .build(),
            )
            .unwrap();
        assert!(dump_on_failure(&cold));
        let cold_json = serde_json::to_string(&cold).unwrap();
        assert!(!cold_json.contains("\"script\":"), "{cold_json}");
        assert_eq!(Store::open(&dir).unwrap().stats().scripts, 1);
        // A mined run feeds the banked script back and reports the IR.
        let mined = session
            .run(
                JobSpec::builder(p, "kernel")
                    .store_dir(&dir)
                    .mined(true)
                    .build(),
            )
            .unwrap();
        assert!(dump_on_failure(&mined));
        assert!(mined.repair.mined);
        assert!(!mined.repair.script.is_empty());
        assert_eq!(mined.repair.script.kind_names(), mined.repair.applied);
        assert!(mined.repair.first_fix_attempts.is_some());
        let mined_json = serde_json::to_string(&mined).unwrap();
        assert!(mined_json.contains("\"script\":"), "{mined_json}");
        assert!(mined_json.contains("\"mined\":true"), "{mined_json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_emits_phase_events() {
        let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.2;
        cfg.fuzz.max_execs = 100;
        let metrics = std::sync::Arc::new(heterogen_trace::MetricsSink::new());
        let session = HeteroGen::builder()
            .config(cfg)
            .sink(metrics.clone())
            .build();
        let report = session.run(JobSpec::fuzz(p, "kernel", vec![])).unwrap();
        assert!(report.success());
        assert_eq!(metrics.counter("phase_enter"), 2);
        assert_eq!(metrics.counter("phase_exit"), 2);
        let tg = metrics.histogram("phase.testgen.min").unwrap();
        assert!((tg.sum() - report.testgen.minutes).abs() < 1e-12);
        let rp = metrics.histogram("phase.repair.min").unwrap();
        assert!((rp.sum() - report.repair.minutes).abs() < 1e-12);
        assert_eq!(metrics.counter("full_compile"), report.repair.full_compiles);
    }
}
