//! Cross-crate toolchain integration: checker ↔ repair ↔ simulator flows
//! that no single crate can test alone.

use minic_exec::{ArgValue, Machine, MachineConfig};

/// A full manual walk of the paper's pipeline stages on a small subject,
/// asserting the intermediate artifacts at each stage (Figure 1).
#[test]
fn figure1_stage_by_stage() {
    let src = r#"
        int kernel(int a[8], int n) {
            if (n > 8) { n = 8; }
            if (n < 1) { n = 1; }
            int buf[n];
            int ret = 0;
            for (int i = 0; i < n; i++) { buf[i] = a[i] * 2; }
            for (int i = 0; i < n; i++) {
                if (buf[i] > ret) { ret = buf[i]; }
            }
            return ret;
        }
    "#;
    let p = minic::parse(src).unwrap();

    // Stage 1: test generation.
    let cfg = testgen::FuzzConfig::builder()
        .with_idle_stop_min(0.5)
        .with_max_execs(600)
        .build();
    let fr = testgen::fuzz(&p, "kernel", vec![], &cfg).unwrap();
    assert!(fr.coverage > 0.8, "coverage {}", fr.coverage);
    assert!(!fr.corpus.is_empty());

    // Stage 2: initial HLS version with estimated types.
    let broken = heterogen_core::initial_version(&p, &fr.profile);

    // Stage 3: the HLS compiler reports the VLA.
    let diags = hls_sim::check_program(&broken);
    assert!(diags.iter().any(|d| d.message.contains("unknown size")));

    // Stage 4: localization proposes array_static with a profiled size.
    let edits = repair::candidate_edits(&broken, &diags, &fr.profile);
    assert!(edits
        .iter()
        .any(|e| matches!(e, repair::RepairEdit::ArrayStatic { var, .. } if var == "buf")));

    // Stage 5: full repair with differential testing.
    let out = repair::repair(
        &p,
        broken,
        "kernel",
        &fr.corpus,
        &fr.profile,
        &repair::SearchConfig::builder()
            .with_budget_min(200.0)
            .with_max_diff_tests(12)
            .with_explore_performance(false)
            .build(),
    )
    .unwrap();
    assert!(out.success, "applied: {:?}", out.applied);
    assert!(hls_sim::check_program(&out.program).is_empty());
}

/// Output of the repair loop stays re-parseable — the printed HLS-C is a
/// real artifact a developer could take away.
#[test]
fn transpiled_sources_reparse() {
    for id in ["P1", "P6", "P7"] {
        let s = benchsuite::subject(id).unwrap();
        let p = s.parse();
        let mut cfg = heterogen_core::PipelineConfig::quick();
        cfg.fuzz.idle_stop_min = 0.5;
        cfg.fuzz.max_execs = 300;
        let mut seeds = s.seed_inputs.clone();
        seeds.extend(s.existing_tests.clone());
        let r = heterogen_core::HeteroGen::builder()
            .config(cfg)
            .build()
            .run(heterogen_core::JobSpec::fuzz(p, s.kernel, seeds))
            .unwrap();
        let printed = minic::print_program(&r.program);
        let reparsed = minic::parse(&printed)
            .unwrap_or_else(|e| panic!("{id}: output does not reparse: {e}\n{printed}"));
        assert_eq!(printed, minic::print_program(&reparsed), "{id}");
    }
}

/// FPGA finitization semantics drive divergence detection: the same kernel,
/// same inputs, both interpreters — only the declared widths differ.
#[test]
fn differential_oracle_catches_width_truncation() {
    let orig = minic::parse("int kernel(int x) { int r = x + 100; return r; }").unwrap();
    let narrowed =
        minic::parse("int kernel(int x) { fpga_uint<6> r = x + 100; return r; }").unwrap();
    let tests: Vec<Vec<ArgValue>> = vec![
        vec![ArgValue::Int(-90)], // 10 fits in 6 bits → identical
        vec![ArgValue::Int(0)],   // 100 overflows 6 bits → diverges
    ];
    let tester = repair::DifferentialTester::new(&orig, "kernel", &tests, 8).unwrap();
    let r = tester.evaluate(&narrowed);
    assert!((r.pass_ratio - 0.5).abs() < 1e-9, "pass = {}", r.pass_ratio);
}

/// Streams thread through the whole stack: parser → checker → both
/// execution modes.
#[test]
fn stream_kernels_run_on_both_sides() {
    let src = r#"
        void kernel(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
            unsigned acc = 0u;
            while (!in.empty()) {
                acc = acc + in.read();
                out.write(acc);
            }
        }
    "#;
    let p = minic::parse(src).unwrap();
    assert!(hls_sim::check_program(&p).is_empty());
    let args = vec![
        ArgValue::IntStream(vec![1, 2, 3, 4]),
        ArgValue::IntStream(vec![]),
    ];
    let mut cpu = Machine::new(&p, MachineConfig::cpu()).unwrap();
    let a = cpu.run_kernel("kernel", &args);
    let sim = hls_sim::FpgaSimulator::new(&p).unwrap();
    let b = sim.run(&args);
    assert!(a.behaviour_eq(&b.outcome));
    let prefix: Vec<i128> = b.outcome.streams[1]
        .iter()
        .map(|s| match s {
            minic_exec::ScalarOut::Int(v) => *v,
            _ => 0,
        })
        .collect();
    assert_eq!(prefix, vec![1, 3, 6, 10]);
}

/// The resource estimate shrinks under bitwidth finitization — the knock-on
/// effect the paper motivates type estimation with (§2).
#[test]
fn finitization_reduces_resource_estimate() {
    let p = minic::parse(
        "int kernel(int x) { int small = 0; small = x % 50; int other = small + 1; return other; }",
    )
    .unwrap();
    let mut profile = minic_exec::Profile::new();
    for x in [0i128, 10, 49, 120] {
        let mut m = Machine::new(&p, MachineConfig::cpu()).unwrap();
        let _ = m.run_kernel("kernel", &[ArgValue::Int(x)]);
        profile.merge(&m.profile);
    }
    let narrowed = heterogen_core::initial_version(&p, &profile);
    assert!(
        hls_sim::resource_estimate(&narrowed) < hls_sim::resource_estimate(&p),
        "narrowing must reduce estimated resources"
    );
}

/// Compile-cost accounting is the quantity the ablations measure; the
/// style check must be at least an order of magnitude cheaper.
#[test]
fn cost_model_orders_style_before_compile() {
    let model = hls_sim::CompileCostModel::default();
    for s in benchsuite::subjects() {
        let p = s.parse();
        assert!(
            model.full_compile(&p) > 10.0 * model.style_check(&p),
            "{}: compile {} vs style {}",
            s.id,
            model.full_compile(&p),
            model.style_check(&p)
        );
    }
}
