//! Thread-count invariance of the parallel evaluation engine.
//!
//! The contract of `SearchConfig::threads` / `FuzzConfig::threads` is that
//! the worker count changes wall-clock time *only*: every observable output
//! — corpora, counters, simulated clocks, applied edits, latencies — is
//! bit-identical to the sequential (`threads = 1`) baseline. These tests
//! pin that contract on real benchmark subjects.

use minic_exec::ExecEngine;
use repair::{DifferentialTester, SearchConfig};
use testgen::FuzzConfig;

const THREADS: [usize; 3] = [2, 4, 8];

/// The engine the whole suite runs under: `HETEROGEN_ENGINE=treewalk`
/// replays every thread-invariance test on the reference interpreter (CI
/// runs the suite once per engine), default is the bytecode VM.
fn engine_under_test() -> ExecEngine {
    std::env::var("HETEROGEN_ENGINE")
        .ok()
        .map(|v| v.parse().expect("valid HETEROGEN_ENGINE"))
        .unwrap_or_default()
}

fn fuzz_cfg(threads: usize) -> FuzzConfig {
    FuzzConfig::builder()
        .with_idle_stop_min(0.5)
        .with_max_execs(400)
        .with_threads(threads)
        .with_engine(engine_under_test())
        .build()
}

fn search_cfg(threads: usize) -> SearchConfig {
    SearchConfig::builder()
        .with_budget_min(150.0)
        .with_max_diff_tests(8)
        .with_explore_performance(true)
        .with_threads(threads)
        .with_engine(engine_under_test())
        .build()
}

#[test]
fn fuzzing_is_thread_count_invariant() {
    for id in ["P1", "P3", "P6"] {
        let s = benchsuite::subject(id).unwrap();
        let p = s.parse();
        let mut seeds = s.seed_inputs.clone();
        seeds.extend(s.existing_tests.clone());
        let base = testgen::fuzz(&p, s.kernel, seeds.clone(), &fuzz_cfg(1)).unwrap();
        assert!(!base.corpus.is_empty(), "{id}: empty baseline corpus");
        for threads in THREADS {
            let r = testgen::fuzz(&p, s.kernel, seeds.clone(), &fuzz_cfg(threads)).unwrap();
            assert_eq!(base.corpus, r.corpus, "{id}: corpus @ {threads} threads");
            assert_eq!(
                base.executed, r.executed,
                "{id}: executed @ {threads} threads"
            );
            assert_eq!(
                base.sim_minutes.to_bits(),
                r.sim_minutes.to_bits(),
                "{id}: sim_minutes @ {threads} threads"
            );
            assert_eq!(
                base.coverage.to_bits(),
                r.coverage.to_bits(),
                "{id}: coverage @ {threads} threads"
            );
            assert_eq!(base.profile, r.profile, "{id}: profile @ {threads} threads");
            assert_eq!(
                base.peak_heap_cells, r.peak_heap_cells,
                "{id}: peak heap @ {threads} threads"
            );
        }
    }
}

#[test]
fn differential_testing_is_thread_count_invariant() {
    let s = benchsuite::subject("P6").unwrap();
    let p = s.parse();
    let fr = testgen::fuzz(&p, s.kernel, s.seed_inputs.clone(), &fuzz_cfg(1)).unwrap();
    let broken = heterogen_core::initial_version(&p, &fr.profile);
    let base = DifferentialTester::with_threads(&p, s.kernel, &fr.corpus, 48, 1).unwrap();
    let base_report = base.evaluate(&broken);
    for threads in THREADS {
        let d = DifferentialTester::with_threads(&p, s.kernel, &fr.corpus, 48, threads).unwrap();
        assert_eq!(
            base.cpu_latency_ms().to_bits(),
            d.cpu_latency_ms().to_bits(),
            "cpu latency @ {threads} threads"
        );
        let r = d.evaluate(&broken);
        assert_eq!(
            base_report.pass_ratio.to_bits(),
            r.pass_ratio.to_bits(),
            "pass ratio @ {threads} threads"
        );
        assert_eq!(
            base_report.fpga_latency_ms.to_bits(),
            r.fpga_latency_ms.to_bits(),
            "fpga latency @ {threads} threads"
        );
    }
}

/// One full repair run per thread count, compared field by field against
/// the sequential baseline (floats by bit pattern, not approximately).
fn assert_repair_invariant(id: &str, cfg_for: impl Fn(usize) -> SearchConfig) {
    let s = benchsuite::subject(id).unwrap();
    let p = s.parse();
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());
    let fr = testgen::fuzz(&p, s.kernel, seeds, &fuzz_cfg(1)).unwrap();
    let broken = heterogen_core::initial_version(&p, &fr.profile);

    let base = repair::repair(
        &p,
        broken.clone(),
        s.kernel,
        &fr.corpus,
        &fr.profile,
        &cfg_for(1),
    )
    .unwrap();
    for threads in THREADS {
        let r = repair::repair(
            &p,
            broken.clone(),
            s.kernel,
            &fr.corpus,
            &fr.profile,
            &cfg_for(threads),
        )
        .unwrap();
        assert_eq!(
            base.applied, r.applied,
            "{id}: applied edits @ {threads} threads"
        );
        assert_eq!(base.stats, r.stats, "{id}: stats @ {threads} threads");
        assert_eq!(base.success, r.success, "{id}: success @ {threads} threads");
        assert_eq!(
            base.improved, r.improved,
            "{id}: improved @ {threads} threads"
        );
        assert_eq!(
            base.pass_ratio.to_bits(),
            r.pass_ratio.to_bits(),
            "{id}: pass ratio @ {threads} threads"
        );
        assert_eq!(
            base.fpga_latency_ms.to_bits(),
            r.fpga_latency_ms.to_bits(),
            "{id}: fpga latency @ {threads} threads"
        );
        assert_eq!(
            base.cpu_latency_ms.to_bits(),
            r.cpu_latency_ms.to_bits(),
            "{id}: cpu latency @ {threads} threads"
        );
        assert_eq!(
            minic::print_program(&base.program),
            minic::print_program(&r.program),
            "{id}: returned program @ {threads} threads"
        );
    }
}

#[test]
fn repair_search_is_thread_count_invariant() {
    for id in ["P3", "P6"] {
        assert_repair_invariant(id, search_cfg);
    }
}

/// The `WithoutDependence` ablation draws edits from the RNG; the batch
/// planner must consume the RNG on the caller thread only, so even the
/// randomized search trajectory is identical at any worker count.
#[test]
fn random_ablation_is_thread_count_invariant() {
    assert_repair_invariant("P6", |threads| {
        search_cfg(threads)
            .to_builder()
            .with_dependence(false)
            .with_rng_seed(41)
            .build()
    });
}

/// The backend-generic entry point under a non-default backend: the
/// embedded profile reschedules and re-bills every candidate, and the
/// whole search must still be thread-count invariant — same stats, same
/// winning program, bit-identical latency at any worker count.
#[test]
fn alternative_backend_search_is_thread_count_invariant() {
    use heterogen_faults::NoFaults;
    use heterogen_toolchain::SimBackend;
    use heterogen_trace::NullSink;

    let s = benchsuite::subject("P6").unwrap();
    let p = s.parse();
    let fr = testgen::fuzz(&p, s.kernel, s.seed_inputs.clone(), &fuzz_cfg(1)).unwrap();
    let broken = heterogen_core::initial_version(&p, &fr.profile);
    let backend = SimBackend::embedded_profile();

    let run_at = |threads: usize| {
        repair::repair_with_backend(
            &p,
            broken.clone(),
            s.kernel,
            &fr.corpus,
            &fr.profile,
            &search_cfg(threads),
            &NullSink,
            &NoFaults,
            &backend,
        )
        .unwrap()
    };

    let base = run_at(1);
    for threads in [2usize, 4] {
        let r = run_at(threads);
        assert_eq!(base.applied, r.applied, "applied @ {threads} threads");
        assert_eq!(base.stats, r.stats, "stats @ {threads} threads");
        assert_eq!(base.success, r.success, "success @ {threads} threads");
        assert_eq!(base.stop, r.stop, "stop reason @ {threads} threads");
        assert_eq!(
            base.fpga_latency_ms.to_bits(),
            r.fpga_latency_ms.to_bits(),
            "fpga latency @ {threads} threads"
        );
        assert_eq!(
            minic::print_program(&base.program),
            minic::print_program(&r.program),
            "returned program @ {threads} threads"
        );
    }

    // The two profiles are genuinely distinct toolchains: the embedded
    // schedule model (single-port BRAM, 1.25 cycles/op, 8x speedup cap)
    // must land the same subject at a different latency than the default
    // datacenter profile.
    let default_run = repair::repair(
        &p,
        broken,
        s.kernel,
        &fr.corpus,
        &fr.profile,
        &search_cfg(1),
    )
    .unwrap();
    assert_ne!(
        base.fpga_latency_ms.to_bits(),
        default_run.fpga_latency_ms.to_bits(),
        "the embedded backend should schedule P6 differently from the default"
    );
}

/// The trace layer's merge-phase emission rule, pinned end to end: a full
/// pipeline run (fuzzing + repair) with a `JsonlSink` must produce a
/// byte-identical event stream at every thread count.
#[test]
fn trace_stream_is_thread_count_invariant() {
    use heterogen_core::{HeteroGen, JobSpec};
    use heterogen_trace::JsonlSink;
    use std::sync::Arc;

    let s = benchsuite::subject("P3").unwrap();
    let p = s.parse();
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());

    let trace_at = |threads: usize| {
        let mut cfg = heterogen_core::PipelineConfig::quick();
        cfg.fuzz = fuzz_cfg(threads);
        cfg.search = search_cfg(threads);
        let sink = Arc::new(JsonlSink::new());
        let session = HeteroGen::builder().config(cfg).sink(sink.clone()).build();
        session
            .run(JobSpec::fuzz(p.clone(), s.kernel, seeds.clone()))
            .unwrap();
        sink.contents()
    };

    let base = trace_at(1);
    assert!(!base.is_empty(), "baseline trace is empty");
    for threads in [2usize, 4] {
        let r = trace_at(threads);
        assert_eq!(base, r, "trace bytes @ {threads} threads");
    }
}

/// Strips the fault-layer events (`fault_injected`, `retry_scheduled`)
/// from a JSONL trace, leaving the stream a fault-free run would emit.
fn strip_fault_events(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| {
            !l.contains("\"event\":\"fault_injected\"")
                && !l.contains("\"event\":\"retry_scheduled\"")
        })
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Chaos determinism: a transient-only fault plan must not perturb the
/// search at all. Every transient is retried to success, the backoff is
/// billed to the resilience ledger (never the search clock), and the
/// outcome — stats, applied edits, returned program, latencies, and the
/// trace stream minus the fault events themselves — is byte-identical to
/// the fault-free run, at one worker thread and at many.
#[test]
fn chaos_transient_faults_leave_the_search_byte_identical() {
    use heterogen_faults::FaultPlan;
    use heterogen_trace::JsonlSink;

    let s = benchsuite::subject("P6").unwrap();
    let p = s.parse();
    let fr = testgen::fuzz(&p, s.kernel, s.seed_inputs.clone(), &fuzz_cfg(1)).unwrap();
    let broken = heterogen_core::initial_version(&p, &fr.profile);

    let base_sink = JsonlSink::new();
    let base = repair::repair_traced(
        &p,
        broken.clone(),
        s.kernel,
        &fr.corpus,
        &fr.profile,
        &search_cfg(1),
        &base_sink,
    )
    .unwrap();
    let base_trace = base_sink.contents();
    assert!(!base.resilience.any(), "fault-free run absorbed faults");

    // Transient runs of at most 2 attempts against the default 3-retry
    // policy: every injected fault is recoverable.
    let plan = FaultPlan::builder(0xC0FFEE)
        .with_transient_rate(0.35)
        .with_transient_len(2)
        .build();
    for threads in [1usize, 2, 4] {
        let sink = JsonlSink::new();
        let r = repair::repair_resilient(
            &p,
            broken.clone(),
            s.kernel,
            &fr.corpus,
            &fr.profile,
            &search_cfg(threads),
            &sink,
            &plan,
        )
        .unwrap();
        assert_eq!(base.applied, r.applied, "applied @ {threads} threads");
        assert_eq!(base.stats, r.stats, "stats @ {threads} threads");
        assert_eq!(base.success, r.success, "success @ {threads} threads");
        assert_eq!(base.stop, r.stop, "stop reason @ {threads} threads");
        assert_eq!(
            base.fpga_latency_ms.to_bits(),
            r.fpga_latency_ms.to_bits(),
            "fpga latency @ {threads} threads"
        );
        assert_eq!(
            minic::print_program(&base.program),
            minic::print_program(&r.program),
            "returned program @ {threads} threads"
        );
        // The chaos actually happened — and was fully absorbed.
        assert!(
            r.resilience.transient_faults >= 2,
            "want ≥2 transients, got {} @ {threads} threads",
            r.resilience.transient_faults
        );
        assert_eq!(
            r.resilience.retries, r.resilience.transient_faults,
            "every transient retried @ {threads} threads"
        );
        assert!(
            r.resilience.backoff_min > 0.0,
            "backoff billed to the resilience ledger @ {threads} threads"
        );
        assert_eq!(r.resilience.crashes, 0, "crashes @ {threads} threads");
        assert_eq!(
            r.resilience.permanent_faults, 0,
            "permanent faults @ {threads} threads"
        );
        // Same fault schedule at every thread count, and — minus the fault
        // events themselves — the same trace bytes as the fault-free run.
        assert_eq!(
            base_trace,
            strip_fault_events(&sink.contents()),
            "trace minus fault events @ {threads} threads"
        );
    }
}

/// Extracts the fingerprints of `candidate_evaluated` events carrying the
/// given verdict, in emission order.
fn fingerprints_with_verdict(trace: &str, verdict: &str) -> Vec<u64> {
    let want = format!("\"verdict\":\"{verdict}\"");
    trace
        .lines()
        .filter(|l| l.contains("\"event\":\"candidate_evaluated\"") && l.contains(&want))
        .filter_map(|l| {
            let at = l.find("\"fingerprint\":\"")? + "\"fingerprint\":\"".len();
            u64::from_str_radix(l.get(at..at + 16)?, 16).ok()
        })
        .collect()
}

/// The acceptance scenario of the fault-injection harness: a repair search
/// with one poisoned (panicking) candidate *and* injected transient compile
/// faults still completes, retries deterministically, and returns the same
/// best program as the fault-free run.
#[test]
fn chaos_poisoned_candidate_is_isolated_and_the_repair_still_lands() {
    use heterogen_faults::FaultPlan;
    use heterogen_trace::JsonlSink;

    let s = benchsuite::subject("P6").unwrap();
    let p = s.parse();
    let fr = testgen::fuzz(&p, s.kernel, s.seed_inputs.clone(), &fuzz_cfg(1)).unwrap();
    let broken = heterogen_core::initial_version(&p, &fr.profile);

    let base_sink = JsonlSink::new();
    let base = repair::repair_traced(
        &p,
        broken.clone(),
        s.kernel,
        &fr.corpus,
        &fr.profile,
        &search_cfg(1),
        &base_sink,
    )
    .unwrap();
    assert!(base.success, "baseline repair failed: {:?}", base.applied);

    // Poison the last candidate the fault-free run admitted. The run ended
    // on budget expiry, so nothing admitted in the final batch was ever
    // popped from the frontier again — and a crashed candidate is billed
    // exactly what its admission cost — so the rest of the search replays
    // unchanged and the divergence is confined to the resilience ledger.
    let admitted = fingerprints_with_verdict(&base_sink.contents(), "admitted");
    assert!(
        !admitted.is_empty(),
        "baseline run admitted no candidate to poison"
    );
    let plan = FaultPlan::builder(0xBAD5EED)
        .with_poison_key(*admitted.last().unwrap())
        .with_transient_rate(0.35)
        .with_transient_len(2)
        .build();

    for threads in [1usize, 4] {
        let sink = JsonlSink::new();
        let r = repair::repair_resilient(
            &p,
            broken.clone(),
            s.kernel,
            &fr.corpus,
            &fr.profile,
            &search_cfg(threads),
            &sink,
            &plan,
        )
        .unwrap();
        assert!(r.success, "chaos run failed @ {threads} threads");
        assert_eq!(
            minic::print_program(&base.program),
            minic::print_program(&r.program),
            "best program @ {threads} threads"
        );
        assert_eq!(base.applied, r.applied, "applied @ {threads} threads");
        assert_eq!(base.stats, r.stats, "stats @ {threads} threads");
        assert!(
            r.resilience.crashes >= 1,
            "poisoned candidate not crashed @ {threads} threads"
        );
        assert!(
            r.resilience.transient_faults >= 2,
            "want ≥2 transient compile faults, got {} @ {threads} threads",
            r.resilience.transient_faults
        );
        assert!(
            !fingerprints_with_verdict(&sink.contents(), "crashed").is_empty(),
            "no crashed verdict traced @ {threads} threads"
        );
    }
}

/// Engine invariance, end to end: the bytecode VM and the tree-walking
/// reference must produce byte-identical `PipelineReport` JSON *and*
/// byte-identical JSONL trace streams — at one worker thread and at many.
/// (`ExecEngine` changes wall-clock time only, exactly like `threads`.)
#[test]
fn engine_choice_is_report_and_trace_byte_identical() {
    use heterogen_core::{HeteroGen, JobSpec, PipelineConfig};
    use heterogen_trace::JsonlSink;
    use minic_exec::ExecEngine;
    use std::sync::Arc;

    let s = benchsuite::subject("P3").unwrap();
    let p = s.parse();
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());

    let run_with = |engine: ExecEngine, threads: usize| {
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz = fuzz_cfg(threads);
        cfg.search = search_cfg(threads);
        cfg.fuzz.engine = engine;
        cfg.search.engine = engine;
        let sink = Arc::new(JsonlSink::new());
        let session = HeteroGen::builder().config(cfg).sink(sink.clone()).build();
        let report = session
            .run(JobSpec::fuzz(p.clone(), s.kernel, seeds.clone()))
            .unwrap();
        (
            serde_json::to_string(&report).expect("serializable report"),
            sink.contents(),
        )
    };

    let (base_report, base_trace) = run_with(ExecEngine::Bytecode, 1);
    assert!(!base_trace.is_empty(), "baseline trace is empty");
    for threads in [1usize, 2, 4] {
        for engine in [ExecEngine::Bytecode, ExecEngine::TreeWalk] {
            let (report, trace) = run_with(engine, threads);
            assert_eq!(
                base_report, report,
                "report bytes ({engine} @ {threads} threads)"
            );
            assert_eq!(
                base_trace, trace,
                "trace bytes ({engine} @ {threads} threads)"
            );
        }
    }
}

/// Durability determinism: a warm persistent store changes wall time only.
/// For each thread count, a store-less run, a cold-store run (populating a
/// fresh store), a warm-store run (replaying it), and a warm run after the
/// log is truncated mid-record (torn-write recovery) must all produce
/// byte-identical report JSON and JSONL trace streams. A store warmed at
/// one thread count must also replay cleanly at another, because the
/// corpus key deliberately excludes `threads`.
#[test]
fn warm_store_is_report_and_trace_byte_identical() {
    use heterogen_core::{HeteroGen, JobSpec, PipelineConfig};
    use heterogen_store::Store;
    use heterogen_trace::JsonlSink;
    use std::sync::Arc;

    let s = benchsuite::subject("P3").unwrap();
    let p = s.parse();
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());
    let dir = std::env::temp_dir().join(format!("heterogen-test-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run_with = |threads: usize, store: Option<Arc<Store>>| {
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz = fuzz_cfg(threads);
        cfg.search = search_cfg(threads);
        let sink = Arc::new(JsonlSink::new());
        let mut builder = HeteroGen::builder().config(cfg).sink(sink.clone());
        if let Some(store) = store {
            builder = builder.store(store);
        }
        let report = builder
            .build()
            .run(JobSpec::fuzz(p.clone(), s.kernel, seeds.clone()))
            .unwrap();
        (
            serde_json::to_string(&report).expect("serializable report"),
            sink.contents(),
        )
    };

    for threads in [1usize, 2, 4] {
        let reference = run_with(threads, None);
        let sub = dir.join(format!("t{threads}"));

        let cold_store = Arc::new(Store::open(&sub).unwrap());
        assert!(cold_store.recovery().created);
        let cold = run_with(threads, Some(cold_store.clone()));
        assert_eq!(reference, cold, "cold store bytes @ {threads} threads");
        assert_eq!(cold_store.stats().write_errors, 0);

        let warm_store = Arc::new(Store::open(&sub).unwrap());
        assert!(
            warm_store.stats().verdicts > 0,
            "cold run persisted nothing"
        );
        assert_eq!(warm_store.stats().corpora, 1);
        assert!(
            warm_store.stats().diffs > 0,
            "cold run persisted no differential verdicts"
        );
        let log_bytes = warm_store.stats().log_bytes;
        let warm = run_with(threads, Some(warm_store.clone()));
        assert_eq!(reference, warm, "warm store bytes @ {threads} threads");
        assert_eq!(
            warm_store.stats().log_bytes,
            log_bytes,
            "a fully warm run must not grow the log"
        );

        // Tear the log mid-record; the open quarantines the tail and the
        // run re-derives whatever was lost, byte for byte.
        let log = heterogen_store::log_path(&sub);
        let len = std::fs::metadata(&log).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&log)
            .and_then(|f| f.set_len(len - 7))
            .unwrap();
        let torn_store = Arc::new(Store::open(&sub).unwrap());
        assert!(
            !torn_store.recovery().clean(),
            "truncation went unnoticed @ {threads} threads"
        );
        assert!(torn_store.recovery().quarantined_bytes > 0);
        let torn = run_with(threads, Some(torn_store));
        assert_eq!(reference, torn, "torn-recovery bytes @ {threads} threads");
    }

    // One store shared across thread counts: every persisted result is
    // thread-invariant, so entries written at t=1 warm the t=2/t=4 runs.
    let shared = dir.join("shared");
    let reference = run_with(1, Some(Arc::new(Store::open(&shared).unwrap())));
    for threads in [2usize, 4] {
        let warm = run_with(threads, Some(Arc::new(Store::open(&shared).unwrap())));
        assert_eq!(
            reference, warm,
            "cross-thread warm bytes @ {threads} threads"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The mined-pattern tier's determinism contract, both halves:
///
/// * **Mining off** (the default), the run is byte-identical to a
///   store-less run at every thread count — even over a warm store full of
///   banked scripts *and* mined patterns. Learning never leaks into a run
///   that did not opt in.
/// * **Mining on**, the run is deterministic and thread-count invariant:
///   the same report JSON and JSONL trace at 1/2/4 workers, with the
///   winning script and `mined` marker in the report.
#[test]
fn mined_tier_is_gated_and_thread_count_invariant() {
    use heterogen_core::{HeteroGen, JobSpec, PipelineConfig};
    use heterogen_store::Store;
    use heterogen_trace::JsonlSink;
    use std::sync::Arc;

    let s = benchsuite::subject("P3").unwrap();
    let p = s.parse();
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());
    let dir = std::env::temp_dir().join(format!("heterogen-test-mined-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run_with = |threads: usize, store: Option<Arc<Store>>, mined: bool| {
        let mut cfg = PipelineConfig::quick();
        cfg.fuzz = fuzz_cfg(threads);
        cfg.search = search_cfg(threads);
        let sink = Arc::new(JsonlSink::new());
        let mut builder = HeteroGen::builder().config(cfg).sink(sink.clone());
        if let Some(store) = store {
            builder = builder.store(store);
        }
        let spec = JobSpec::builder(p.clone(), s.kernel)
            .seeds(seeds.clone())
            .mined(mined)
            .build();
        let report = builder.build().run(spec).unwrap();
        (
            serde_json::to_string(&report).expect("serializable report"),
            sink.contents(),
        )
    };

    let reference = run_with(1, None, false);
    assert!(
        !reference.0.contains("\"mined\""),
        "a mining-off report must not carry the mined fields"
    );

    // Cold run banks the winning script; then mine patterns into the store
    // (what `reproduce mine` does).
    let store = Arc::new(Store::open(&dir).unwrap());
    let cold = run_with(1, Some(store.clone()), false);
    assert_eq!(reference, cold, "cold-store bytes");
    let scripts: Vec<repair::EditScript> = store.scripts().into_iter().map(|(_, s)| s).collect();
    assert!(
        !scripts.is_empty(),
        "the successful run must bank its script"
    );
    for pat in repair::mine::mine_patterns(&scripts) {
        store.put_pattern(&pat);
    }
    assert!(!store.patterns().is_empty());
    drop(store);

    // Mining off: the warm store full of scripts and patterns is invisible.
    for threads in [1usize, 2, 4] {
        let warm = run_with(threads, Some(Arc::new(Store::open(&dir).unwrap())), false);
        assert_eq!(reference, warm, "mining-off warm bytes @ {threads} threads");
    }

    // Mining on: deterministic across repeats and thread counts, and the
    // report opts into the script fields.
    let mined_base = run_with(1, Some(Arc::new(Store::open(&dir).unwrap())), true);
    assert!(
        mined_base.0.contains("\"mined\":true"),
        "a mined run's report must carry the mined marker"
    );
    assert!(
        mined_base.0.contains("\"script\":"),
        "a mined run's report must carry the winning script"
    );
    assert!(
        mined_base.1.contains("\"event\":\"repair_script\""),
        "a mined run's trace must carry the repair_script event"
    );
    for threads in [1usize, 2, 4] {
        let r = run_with(threads, Some(Arc::new(Store::open(&dir).unwrap())), true);
        assert_eq!(mined_base, r, "mined bytes @ {threads} threads");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `MetricsSink` counters must agree with the hand-maintained
/// `SearchStats` for the same run.
#[test]
fn trace_metrics_agree_with_search_stats() {
    use heterogen_trace::MetricsSink;

    let s = benchsuite::subject("P6").unwrap();
    let p = s.parse();
    let fr = testgen::fuzz(&p, s.kernel, s.seed_inputs.clone(), &fuzz_cfg(1)).unwrap();
    let broken = heterogen_core::initial_version(&p, &fr.profile);

    let metrics = MetricsSink::new();
    let out = repair::repair_traced(
        &p,
        broken,
        s.kernel,
        &fr.corpus,
        &fr.profile,
        &search_cfg(2),
        &metrics,
    )
    .unwrap();

    assert_eq!(metrics.counter("candidate_evaluated"), out.stats.attempts);
    assert_eq!(
        metrics.counter("candidate.inapplicable"),
        out.stats.inapplicable
    );
    assert_eq!(
        metrics.counter("candidate.style_rejected"),
        out.stats.style_rejects
    );
    assert_eq!(metrics.counter("style_reject"), out.stats.style_rejects);
    assert_eq!(metrics.counter("full_compile"), out.stats.full_compiles);
    assert_eq!(metrics.counter("diff_evaluated"), out.stats.simulations);
    let admitted = metrics.counter("candidate.admitted");
    assert_eq!(metrics.counter("edit_applied"), admitted);
    assert!(admitted > 0, "no admitted candidates traced");
}
