//! Cross-crate checks of the experiment shapes (Figures 3/8, Tables 3/5,
//! HeteroRefactor scope). The heavyweight Figure 9 sweep lives in the
//! `reproduce` binary; a single-subject ablation is asserted here.

use repair::SearchConfig;

#[test]
fn fig3_classifier_recovers_the_pie() {
    let corpus = benchsuite::forum::forum_corpus(1000, 42);
    assert_eq!(corpus.len(), 1000);
    let accuracy = repair::classify::accuracy(&corpus);
    assert!(accuracy > 0.9, "classifier accuracy {accuracy}");
    for c in hls_sim::ErrorCategory::ALL {
        let share = corpus
            .iter()
            .filter(|(m, _)| repair::classify_message(m) == c)
            .count() as f64
            / 1000.0;
        assert!(
            (share - c.forum_share()).abs() < 0.05,
            "{c}: classified share {share} vs paper {}",
            c.forum_share()
        );
    }
}

#[test]
fn heterorefactor_transpiles_exactly_p3_and_p8() {
    let mut works = Vec::new();
    for s in benchsuite::subjects() {
        if heterorefactor::refactor(&s.parse()).success {
            works.push(s.id);
        }
    }
    assert_eq!(works, vec!["P3", "P8"], "paper: 2/10 vs HeteroGen 10/10");
}

#[test]
fn fig8_existing_tests_miss_the_stack_divergence() {
    let s = benchsuite::subject("P3").unwrap();
    let p = s.parse();
    let mut cfg = heterogen_core::PipelineConfig::quick();
    cfg.fuzz.idle_stop_min = 0.5;
    cfg.fuzz.max_execs = 400;

    // Repair guided only by the shallow pre-existing tests: succeeds on its
    // own terms…
    let session = heterogen_core::HeteroGen::builder().config(cfg).build();
    let existing_run = session
        .run(heterogen_core::JobSpec::with_tests(
            p.clone(),
            s.kernel,
            s.existing_tests.clone(),
        ))
        .unwrap();
    assert!(existing_run.success());

    // …but the generated suite exposes the undersized stack.
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());
    let generated_run = session
        .run(heterogen_core::JobSpec::fuzz(p.clone(), s.kernel, seeds))
        .unwrap();
    assert!(generated_run.success());

    let tester = repair::DifferentialTester::new(&p, s.kernel, &generated_run.tests, 64).unwrap();
    let on_existing_output = tester.evaluate(&existing_run.program);
    let on_generated_output = tester.evaluate(&generated_run.program);
    assert!(
        on_existing_output.pass_ratio < 1.0,
        "the existing-tests-only output must diverge on deeper inputs (paper: 44% fail)"
    );
    assert_eq!(on_generated_output.pass_ratio, 1.0);
}

#[test]
fn checker_ablation_avoids_compilations() {
    let s = benchsuite::subject("P3").unwrap();
    let p = s.parse();
    let fuzz_cfg = testgen::FuzzConfig::builder()
        .with_idle_stop_min(0.5)
        .with_max_execs(400)
        .build();
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());
    let fr = testgen::fuzz(&p, s.kernel, seeds, &fuzz_cfg).unwrap();
    let broken = heterogen_core::initial_version(&p, &fr.profile);

    let base = SearchConfig::builder()
        .with_budget_min(180.0)
        .with_max_diff_tests(12)
        .build();
    let hg = repair::repair(&p, broken.clone(), s.kernel, &fr.corpus, &fr.profile, &base).unwrap();
    let wc = repair::repair(
        &p,
        broken,
        s.kernel,
        &fr.corpus,
        &fr.profile,
        &base.to_builder().with_style_checker(false).build(),
    )
    .unwrap();
    assert!(hg.success && wc.success);
    assert!(
        hg.stats.style_rejects > 0,
        "the style checker must prune part of the search space"
    );
    assert!(
        hg.stats.hls_invocation_ratio() < 1.0,
        "HeteroGen avoids a fraction of full compilations (paper: 75% on P3)"
    );
    assert_eq!(wc.stats.style_checks, 0);
    assert!(
        (wc.stats.hls_invocation_ratio() - 1.0).abs() < f64::EPSILON,
        "WithoutChecker compiles every candidate"
    );
}

#[test]
fn table5_manual_versions_beat_the_cpu_where_the_paper_says() {
    // The manual HLS ports must win on loop-bearing subjects; P1 (no loops)
    // is the model's documented exception.
    for id in ["P4", "P7", "P9"] {
        let s = benchsuite::subject(id).unwrap();
        let p = s.parse();
        let manual = s.parse_manual().unwrap();
        let tests: Vec<testgen::TestCase> = s.seed_inputs.clone();
        let tester = repair::DifferentialTester::new(&p, s.kernel, &tests, 8).unwrap();
        let r = tester.evaluate(&manual);
        assert_eq!(r.pass_ratio, 1.0, "{id}: manual version diverges");
        assert!(
            r.fpga_latency_ms < tester.cpu_latency_ms(),
            "{id}: manual {:.4} ms vs CPU {:.4} ms",
            r.fpga_latency_ms,
            tester.cpu_latency_ms()
        );
    }
}

#[test]
fn table1_examples_classify_to_their_category() {
    for (category, _code, symptom) in hls_sim::errors::table1_examples() {
        assert_eq!(repair::classify_message(symptom), category, "{symptom}");
    }
}
