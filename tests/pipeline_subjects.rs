//! End-to-end pipeline runs on all ten paper subjects (Table 3 shape).

use heterogen_core::{HeteroGen, JobSpec, PipelineConfig, PipelineReport};

fn test_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::quick();
    cfg.fuzz.idle_stop_min = 0.5;
    cfg.fuzz.max_execs = 400;
    cfg.search.budget_min = 180.0;
    cfg.search.max_diff_tests = 16;
    cfg
}

fn run(id: &str) -> PipelineReport {
    let s = benchsuite::subject(id).unwrap_or_else(|| panic!("missing subject {id}"));
    let p = s.parse();
    let mut seeds = s.seed_inputs.clone();
    seeds.extend(s.existing_tests.clone());
    HeteroGen::builder()
        .config(test_config())
        .build()
        .run(JobSpec::fuzz(p, s.kernel, seeds))
        .unwrap_or_else(|e| panic!("{id}: {e}"))
}

fn assert_transpiled(id: &str, r: &PipelineReport) {
    assert!(
        r.success(),
        "{id}: repair failed (pass={}, applied={:?})",
        r.repair.pass_ratio,
        r.repair.applied
    );
    assert!(
        hls_sim::check_program(&r.program).is_empty(),
        "{id}: final program not synthesizable"
    );
    assert_eq!(r.repair.pass_ratio, 1.0, "{id}: behaviour not preserved");
}

#[test]
fn p1_signal_transmission_compatible_but_not_faster() {
    let r = run("P1");
    assert_transpiled("P1", &r);
    assert!(
        !r.repair.improved,
        "P1 has no loops to parallelize — the paper's single ✗"
    );
    assert!(r.repair.applied.iter().any(|k| k == "type_trans"));
}

#[test]
fn p2_arithmetic_repairs_long_double_and_wins() {
    let r = run("P2");
    assert_transpiled("P2", &r);
    assert!(r.repair.improved, "speedup = {:.2}", r.speedup());
    assert!(r.repair.applied.iter().any(|k| k == "type_trans"));
}

#[test]
fn p3_merge_sort_converts_recursion() {
    let r = run("P3");
    assert_transpiled("P3", &r);
    assert!(r.repair.applied.iter().any(|k| k == "stack_trans"));
    assert!(!minic::edit::is_recursive(&r.program, "msort"));
    assert!(r.repair.improved);
}

#[test]
fn p4_image_processing_repairs_dataflow_and_vla() {
    let r = run("P4");
    assert_transpiled("P4", &r);
    assert!(r.repair.applied.iter().any(|k| k == "duplicate_array_arg"));
    assert!(r.repair.applied.iter().any(|k| k == "array_static"));
}

#[test]
fn p5_graph_traversal_applies_longest_chain() {
    let r = run("P5");
    assert_transpiled("P5", &r);
    for needed in ["pointer_to_index", "stack_trans", "type_trans"] {
        assert!(
            r.repair.applied.iter().any(|k| k == needed),
            "P5 missing {needed}: {:?}",
            r.repair.applied
        );
    }
    // Largest edit of the micro-benchmarks (paper: 438 lines).
    assert!(r.delta_loc >= 50, "ΔLOC = {}", r.delta_loc);
}

#[test]
fn p6_matmul_fixes_partition_factor() {
    let r = run("P6");
    assert_transpiled("P6", &r);
    assert!(r
        .repair
        .applied
        .iter()
        .any(|k| k == "pad_array" || k == "explore"));
}

#[test]
fn p7_bubble_sort_fixes_unroll_dataflow_interaction() {
    let r = run("P7");
    assert_transpiled("P7", &r);
    assert!(r.repair.improved);
}

#[test]
fn p8_linked_list_removes_all_pointers() {
    let r = run("P8");
    assert_transpiled("P8", &r);
    assert!(r.repair.applied.iter().any(|k| k == "pointer_to_index"));
    let src = minic::print_program(&r.program);
    assert!(!src.contains("malloc(sizeof"), "malloc must be gone");
}

#[test]
fn p9_face_detection_fixes_top_and_struct() {
    let r = run("P9");
    assert_transpiled("P9", &r);
    assert_eq!(r.program.config.top.as_deref(), Some("detect"));
    let a = &r.repair.applied;
    assert!(a.iter().any(|k| k == "set_top"));
    assert!(
        (a.iter().any(|k| k == "constructor") && a.iter().any(|k| k == "stream_static"))
            || (a.iter().any(|k| k == "flatten") && a.iter().any(|k| k == "inst_update")),
        "one Figure 7 branch must complete: {a:?}"
    );
}

#[test]
fn p10_digit_recognition_finitizes_vlas() {
    let r = run("P10");
    assert_transpiled("P10", &r);
    assert!(r.repair.applied.iter().any(|k| k == "array_static"));
}

#[test]
fn final_programs_preserve_behaviour_on_existing_tests() {
    // Beyond the generated suite: the subjects' own tests must agree too.
    for id in ["P3", "P6", "P10"] {
        let s = benchsuite::subject(id).unwrap();
        let p = s.parse();
        let r = run(id);
        let tester = repair::DifferentialTester::new(&p, s.kernel, &s.existing_tests, 16).unwrap();
        let report = tester.evaluate(&r.program);
        assert_eq!(
            report.pass_ratio, 1.0,
            "{id}: existing tests diverge on the transpiled program"
        );
    }
}

#[test]
fn delta_loc_is_measured_against_the_original() {
    let r = run("P2");
    // The paper's P2 row adds 9 lines; ours is the same order of magnitude.
    assert!(
        r.delta_loc >= 1 && r.delta_loc <= 30,
        "ΔLOC = {}",
        r.delta_loc
    );
    assert!(r.origin_loc >= 5);
}
