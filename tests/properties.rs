//! Property-based tests over the core data structures and the two heavy
//! program transforms.

use minic::ast::{BinOp, Expr};
use minic::types::Type;
use minic_exec::{ArgValue, ExecEngine, Machine, MachineConfig, Prepared};
use proptest::prelude::*;

// ------------------------------------------------------------ expressions

/// A generator for well-formed expressions over `int` variables a, b, c.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i128..1000).prop_map(Expr::int),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Expr::ident),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::BitAnd),
                Just(BinOp::BitOr),
                Just(BinOp::BitXor),
                Just(BinOp::Lt),
                Just(BinOp::Eq),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| Expr::bin(op, l, r))
    })
}

/// Renders a generated expression into a complete kernel.
fn expr_program(e: &Expr) -> String {
    format!(
        "int kernel(int a, int b, int c) {{ int r = {}; return r; }}",
        minic::printer::print_expr(e)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing and reparsing an expression is a fixpoint.
    #[test]
    fn printer_parser_round_trip(e in arb_expr()) {
        let src = expr_program(&e);
        let p1 = minic::parse(&src).expect("generated source parses");
        let printed = minic::print_program(&p1);
        let p2 = minic::parse(&printed).expect("printed source reparses");
        prop_assert_eq!(printed, minic::print_program(&p2));
    }

    /// The interpreter is deterministic.
    #[test]
    fn interpreter_is_deterministic(
        e in arb_expr(),
        a in -100i128..100,
        b in -100i128..100,
        c in -100i128..100,
    ) {
        let src = expr_program(&e);
        let p = minic::parse(&src).unwrap();
        let args = vec![ArgValue::Int(a), ArgValue::Int(b), ArgValue::Int(c)];
        let mut m1 = Machine::new(&p, MachineConfig::cpu()).unwrap();
        let r1 = m1.run_kernel("kernel", &args);
        let mut m2 = Machine::new(&p, MachineConfig::cpu()).unwrap();
        let r2 = m2.run_kernel("kernel", &args);
        prop_assert!(r1.behaviour_eq(&r2));
    }

    /// Print-equal programs have equal structural fingerprints: separate
    /// parses of the same source (fresh `NodeId`s and spans) and a
    /// print/reparse round-trip all land on the same 64-bit key.
    #[test]
    fn fingerprint_agrees_with_print_equality(e in arb_expr()) {
        let src = expr_program(&e);
        let p1 = minic::parse(&src).unwrap();
        let p2 = minic::parse(&src).unwrap();
        prop_assert_eq!(minic::fingerprint_program(&p1), minic::fingerprint_program(&p2));
        let p3 = minic::parse(&minic::print_program(&p1)).unwrap();
        prop_assert_eq!(minic::fingerprint_program(&p1), minic::fingerprint_program(&p3));
    }

    /// The fingerprint is at least as discriminating as the pretty-print
    /// dedup key it replaced: programs that print differently fingerprint
    /// differently (up to the negligible 2^-64 collision chance, which
    /// would surface here as a flake).
    #[test]
    fn fingerprint_separates_print_distinct_programs(e1 in arb_expr(), e2 in arb_expr()) {
        let p1 = minic::parse(&expr_program(&e1)).unwrap();
        let p2 = minic::parse(&expr_program(&e2)).unwrap();
        let print_eq = minic::print_program(&p1) == minic::print_program(&p2);
        let fp_eq = minic::fingerprint_program(&p1) == minic::fingerprint_program(&p2);
        prop_assert_eq!(print_eq, fp_eq);
    }

    /// Reparsing the printed program computes the same results.
    #[test]
    fn round_trip_preserves_semantics(
        e in arb_expr(),
        a in -50i128..50,
        b in -50i128..50,
    ) {
        let p1 = minic::parse(&expr_program(&e)).unwrap();
        let p2 = minic::parse(&minic::print_program(&p1)).unwrap();
        let args = vec![ArgValue::Int(a), ArgValue::Int(b), ArgValue::Int(0)];
        let mut m1 = Machine::new(&p1, MachineConfig::cpu()).unwrap();
        let mut m2 = Machine::new(&p2, MachineConfig::cpu()).unwrap();
        prop_assert!(m1.run_kernel("kernel", &args).behaviour_eq(&m2.run_kernel("kernel", &args)));
    }
}

// ---------------------------------------------------------- engine parity

/// Runs `kernel(args)` under both execution engines and asserts every
/// observable the pipeline consumes matches: the outcome (return value,
/// trap flag, `ExecError` variant *and* message), fuel (`ops`), branch
/// coverage, the value-range/depth/heap profile, and loop/call statistics
/// — under both the CPU and FPGA configurations.
fn assert_engines_agree(p: &minic::Program, kernel: &str, args: &[ArgValue]) {
    let tree = Prepared::new(ExecEngine::TreeWalk, p);
    let byte = Prepared::new(ExecEngine::Bytecode, p);
    for config in [MachineConfig::cpu(), MachineConfig::fpga()] {
        match (tree.runner(config), byte.runner(config)) {
            (Err(e1), Err(e2)) => assert_eq!(e1, e2, "constructor error mismatch"),
            (Ok(mut t), Ok(mut b)) => {
                let o1 = t.run_kernel(kernel, args);
                let o2 = b.run_kernel(kernel, args);
                assert_eq!(o1, o2, "outcome mismatch");
                assert_eq!(t.ops(), b.ops(), "fuel mismatch");
                assert_eq!(t.coverage(), b.coverage(), "coverage mismatch");
                assert_eq!(t.profile(), b.profile(), "profile mismatch");
                assert_eq!(t.loop_stats(), b.loop_stats(), "loop stats mismatch");
                assert_eq!(t.call_counts(), b.call_counts(), "call counts mismatch");
            }
            (t, b) => panic!(
                "constructor outcome diverged: tree={:?} vm={:?}",
                t.err(),
                b.err()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bytecode VM agrees with the tree-walking reference on generated
    /// expression kernels (and the generated programs stay inside the
    /// bytecode subset — no silent fallback).
    #[test]
    fn engines_agree_on_generated_expressions(
        e in arb_expr(),
        a in -100i128..100,
        b in -100i128..100,
        c in -100i128..100,
    ) {
        let p = minic::parse(&expr_program(&e)).unwrap();
        prop_assert!(Prepared::new(ExecEngine::Bytecode, &p).uses_bytecode());
        assert_engines_agree(
            &p,
            "kernel",
            &[ArgValue::Int(a), ArgValue::Int(b), ArgValue::Int(c)],
        );
    }

    /// …and on generated loop/branch/division kernels, where traps
    /// (division by zero), coverage edges and fuel accounting diverge
    /// first if the engines drift.
    #[test]
    fn engines_agree_on_generated_control_flow(
        e1 in arb_expr(),
        e2 in arb_expr(),
        n in 0i128..24,
        a in -100i128..100,
        b in -100i128..100,
        c in -8i128..8,
    ) {
        let src = format!(
            "int kernel(int a, int b, int c) {{\n    int s = 0;\n    for (int i = 0; i < {n}; i++) {{\n        if (({}) < s) {{ s += ({}) / (c - i); }} else {{ s -= i; }}\n    }}\n    return s;\n}}",
            minic::printer::print_expr(&e1),
            minic::printer::print_expr(&e2),
        );
        let p = minic::parse(&src).unwrap();
        prop_assert!(Prepared::new(ExecEngine::Bytecode, &p).uses_bytecode());
        assert_engines_agree(
            &p,
            "kernel",
            &[ArgValue::Int(a), ArgValue::Int(b), ArgValue::Int(c)],
        );
    }
}

/// Fixed-corpus regression: both engines replay every paper subject's
/// seed and existing test inputs identically, and the candidate-heavy
/// subjects P3 and P5 must actually compile to bytecode (no fallback —
/// the BENCH_repair speedup depends on it).
#[test]
fn engines_agree_on_paper_subjects_fixed_corpus() {
    for s in benchsuite::subjects() {
        let p = s.parse();
        if matches!(s.id, "P3" | "P5") {
            assert!(
                Prepared::new(ExecEngine::Bytecode, &p).uses_bytecode(),
                "{} fell back to the tree-walker",
                s.id
            );
        }
        let mut corpus = s.seed_inputs.clone();
        corpus.extend(s.existing_tests.clone());
        for case in &corpus {
            assert_engines_agree(&p, s.kernel, case);
        }
    }
}

// ------------------------------------------------------------ value model

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wrapping is idempotent and lands inside the type's range.
    #[test]
    fn wrap_int_is_idempotent_and_in_range(
        v in any::<i64>().prop_map(|x| x as i128),
        bits in 1u16..64,
        signed in any::<bool>(),
    ) {
        let w = minic_exec::value::wrap_int(v, bits, signed);
        prop_assert_eq!(w, minic_exec::value::wrap_int(w, bits, signed));
        if signed {
            let lo = -(1i128 << (bits - 1));
            let hi = (1i128 << (bits - 1)) - 1;
            prop_assert!((lo..=hi).contains(&w));
        } else {
            prop_assert!((0..(1i128 << bits)).contains(&w));
        }
    }

    /// Quantization is idempotent and bounded by the mantissa precision.
    #[test]
    fn quantize_float_is_idempotent_and_close(
        v in -1.0e12f64..1.0e12,
        mant in 4u16..52,
    ) {
        prop_assume!(v != 0.0);
        let q = minic_exec::value::quantize_float(v, 10, mant);
        let q2 = minic_exec::value::quantize_float(q, 10, mant);
        prop_assert_eq!(q.to_bits(), q2.to_bits());
        if q.is_finite() && q != 0.0 {
            let rel = ((q - v) / v).abs();
            let ulp = 2f64.powi(-(mant as i32));
            prop_assert!(rel <= ulp, "rel {rel} > ulp {ulp}");
        }
    }

    /// `bits_for_range` produces a width that actually holds both bounds.
    #[test]
    fn bits_for_range_holds_its_range(
        lo in -100_000i128..100_000,
        hi in -100_000i128..100_000,
    ) {
        prop_assume!(lo <= hi);
        let signed = lo < 0;
        let bits = minic::types::bits_for_range(lo, hi, signed);
        prop_assert_eq!(minic_exec::value::wrap_int(lo, bits, signed), lo);
        prop_assert_eq!(minic_exec::value::wrap_int(hi, bits, signed), hi);
    }

    /// Line diff invariants: identity is empty; swap mirrors; counts bound.
    #[test]
    fn line_diff_invariants(
        a in proptest::collection::vec("[a-d]{1,3}", 0..12),
        b in proptest::collection::vec("[a-d]{1,3}", 0..12),
    ) {
        let ta = a.join("\n");
        let tb = b.join("\n");
        let same = minic::diff::line_diff(&ta, &ta);
        prop_assert_eq!(same.churn(), 0);
        let fwd = minic::diff::line_diff(&ta, &tb);
        let bwd = minic::diff::line_diff(&tb, &ta);
        prop_assert_eq!(fwd.added, bwd.removed);
        prop_assert_eq!(fwd.removed, bwd.added);
        prop_assert!(fwd.common <= a.len().min(b.len()));
    }
}

// ------------------------------------------------------------ transforms

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The recursion-to-stack transform preserves sorting behaviour on
    /// arbitrary inputs (when the stack is large enough).
    #[test]
    fn stack_trans_preserves_merge_sort(
        input in proptest::collection::vec(-1000i128..1000, 32),
        n in 1i128..=32,
    ) {
        let s = benchsuite::subject("P3").unwrap();
        let p = s.parse();
        let q = repair::xform_stack::stack_trans(&p, "msort", 256).expect("applicable");
        let args = vec![ArgValue::IntArray(input), ArgValue::Int(n)];
        let mut m1 = Machine::new(&p, MachineConfig::cpu()).unwrap();
        let a = m1.run_kernel("kernel", &args);
        let mut m2 = Machine::new(&q, MachineConfig::cpu()).unwrap();
        let b = m2.run_kernel("kernel", &args);
        prop_assert!(!a.trapped && !b.trapped);
        prop_assert!(a.behaviour_eq(&b));
    }

    /// The pointer-removal transform preserves linked-list behaviour on
    /// arbitrary inputs (when the pool is large enough).
    #[test]
    fn pointer_to_index_preserves_linked_list(
        input in proptest::collection::vec(-1000i128..1000, 64),
        n in 1i128..=64,
    ) {
        let s = benchsuite::subject("P8").unwrap();
        let p = s.parse();
        let q = repair::xform_pointer::pointer_to_index(&p, "LNode", 256).expect("applicable");
        let args = vec![ArgValue::IntArray(input), ArgValue::Int(n)];
        let mut m1 = Machine::new(&p, MachineConfig::cpu()).unwrap();
        let a = m1.run_kernel("kernel", &args);
        let mut m2 = Machine::new(&q, MachineConfig::cpu()).unwrap();
        let b = m2.run_kernel("kernel", &args);
        prop_assert!(!a.trapped && !b.trapped);
        prop_assert!(a.behaviour_eq(&b));
    }

    /// Type-valid mutation stays type-valid over long chains, for every
    /// subject's kernel signature.
    #[test]
    fn mutation_preserves_validity_for_all_subjects(
        seed in any::<u64>(),
        rounds in 1usize..40,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for s in benchsuite::subjects() {
            let p = s.parse();
            let specs = testgen::kernel_specs(&p, s.kernel).expect("fuzzable");
            let mut case: Vec<ArgValue> =
                specs.iter().map(|sp| testgen::random_value(sp, &mut rng)).collect();
            for _ in 0..rounds {
                case = testgen::mutate_case(&specs, &case, &mut rng);
                for (spec, v) in specs.iter().zip(&case) {
                    prop_assert!(spec.accepts(v), "{}: {spec:?} rejected {v:?}", s.id);
                }
            }
        }
    }

    /// Finitized bitwidths never change behaviour on inputs inside the
    /// profiled range.
    #[test]
    fn bitwidth_finitization_preserves_profiled_behaviour(
        xs in proptest::collection::vec(0i128..200, 1..16),
    ) {
        let p = minic::parse(
            "int kernel(int x) { int r = 0; r = x * 2; return r + 1; }",
        ).unwrap();
        // Profile over the exact input set…
        let mut profile = minic_exec::Profile::new();
        for &x in &xs {
            let mut m = Machine::new(&p, MachineConfig::cpu()).unwrap();
            let _ = m.run_kernel("kernel", &[ArgValue::Int(x)]);
            profile.merge(&m.profile);
        }
        let narrowed = heterogen_core::initial_version(&p, &profile);
        // …then replay the same inputs: identical behaviour.
        for &x in &xs {
            let mut m1 = Machine::new(&p, MachineConfig::cpu()).unwrap();
            let a = m1.run_kernel("kernel", &[ArgValue::Int(x)]);
            let mut m2 = Machine::new(&narrowed, MachineConfig::fpga()).unwrap();
            let b = m2.run_kernel("kernel", &[ArgValue::Int(x)]);
            prop_assert!(a.behaviour_eq(&b), "diverged on x={x}");
        }
    }
}

// ------------------------------------------------------------ checker

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every `array_partition` factor that divides the extent is clean;
    /// every factor that does not divide it is rejected.
    #[test]
    fn partition_divisibility_rule(extent in 2u64..64, factor in 2u32..16) {
        let src = format!(
            "void kernel(int x) {{\n    int a[{extent}];\n#pragma HLS array_partition variable=a factor={factor} dim=1\n    for (int i = 0; i < {extent}; i++) {{ a[i] = x; }}\n}}"
        );
        let p = minic::parse(&src).unwrap();
        let diags = hls_sim::check_program(&p);
        let has_partition_error = diags.iter().any(|d| d.message.contains("partition"));
        prop_assert_eq!(has_partition_error, extent % factor as u64 != 0);
    }

    /// The coerce-on-store rule: any value stored into `fpga_uint<N>`
    /// reads back inside `[0, 2^N)`.
    #[test]
    fn stores_respect_declared_widths(v in any::<i32>(), bits in 1u16..31) {
        let src = format!(
            "int kernel(int x) {{ fpga_uint<{bits}> r = x; return r; }}"
        );
        let p = minic::parse(&src).unwrap();
        let mut m = Machine::new(&p, MachineConfig::cpu()).unwrap();
        let out = m.run_kernel("kernel", &[ArgValue::Int(v as i128)]);
        prop_assert!(!out.trapped);
        if let Some(minic_exec::ScalarOut::Int(r)) = out.ret {
            prop_assert!((0..(1i128 << bits)).contains(&r), "{r} outside {bits} bits");
        } else {
            prop_assert!(false, "int return expected");
        }
    }
}

// ------------------------------------------------------------ resilience

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The retry schedule is a pure function of the policy: deterministic,
    /// monotone non-decreasing (for backoff factors ≥ 1), bounded per-delay
    /// by `max_delay_min`, bounded cumulatively by `budget_min`, and never
    /// longer than `max_retries`.
    #[test]
    fn retry_schedule_is_deterministic_monotone_and_bounded(
        max_retries in 0u32..12,
        base_delay_min in 0.0f64..4.0,
        backoff_factor in 1.0f64..4.0,
        max_delay_min in 0.0f64..8.0,
        budget_min in 0.0f64..32.0,
    ) {
        let policy = heterogen_faults::RetryPolicy {
            max_retries,
            base_delay_min,
            backoff_factor,
            max_delay_min,
            budget_min,
        };
        let schedule = policy.schedule();
        // Deterministic: recomputing yields the same delays, bit for bit.
        let again = policy.schedule();
        prop_assert_eq!(schedule.len(), again.len());
        for (a, b) in schedule.iter().zip(&again) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // Bounded in length and per delay.
        prop_assert!(schedule.len() <= max_retries as usize);
        for &d in &schedule {
            prop_assert!(d >= 0.0, "negative backoff {d}");
            prop_assert!(d <= max_delay_min, "{d} > max_delay_min {max_delay_min}");
        }
        // Monotone non-decreasing up to the per-delay cap.
        for w in schedule.windows(2) {
            prop_assert!(w[0] <= w[1], "schedule not monotone: {:?}", &schedule);
        }
        // Cumulative backoff stays within the budget.
        let total: f64 = schedule.iter().sum();
        prop_assert!(total <= budget_min, "total {total} > budget {budget_min}");
        // `delay_before` agrees with the schedule on every permitted retry
        // and rejects everything past it.
        for (i, &d) in schedule.iter().enumerate() {
            prop_assert_eq!(policy.delay_before(i as u32 + 1).map(f64::to_bits), Some(d.to_bits()));
        }
        prop_assert_eq!(policy.delay_before(0), None);
        prop_assert_eq!(policy.delay_before(schedule.len() as u32 + 1).is_none(), true);
    }

    /// Fault decisions are pure functions of `(seed, site, key, attempt)`:
    /// the same plan queried twice agrees everywhere, and a transient run,
    /// once it ends, stays ended (retrying past the run always succeeds).
    #[test]
    fn fault_plan_decisions_are_stable(
        seed in any::<u64>(),
        key in any::<u64>(),
        rate in 0.0f64..1.0,
        len in 1u32..4,
    ) {
        use heterogen_faults::{Fault, FaultInjector, FaultPlan, FaultSite};
        let plan = FaultPlan::builder(seed)
            .with_transient_rate(rate)
            .with_transient_len(len)
            .build();
        for site in [FaultSite::HlsCheck, FaultSite::HlsSim, FaultSite::Exec] {
            let mut cleared = false;
            for attempt in 0..(len + 2) {
                let a = plan.fault(site, key, attempt);
                prop_assert_eq!(a, plan.fault(site, key, attempt));
                match a {
                    Some(Fault::Transient) => {
                        prop_assert!(!cleared, "transient run restarted after success");
                        prop_assert!(attempt < len, "run exceeded transient_len");
                    }
                    None => cleared = true,
                    other => prop_assert!(false, "unexpected fault {other:?}"),
                }
            }
            prop_assert!(cleared, "transient run never ended within len+2 attempts");
        }
    }
}

// ------------------------------------------------------------- wire forms

use heterogen_store::codec::{self, Entry};
use heterogen_store::ScriptKey;
use repair::{EditKind, EditScript, FixPattern, PatternEdit, ScriptEdit};

/// A generator over every edit family.
fn arb_edit_kind() -> impl Strategy<Value = EditKind> {
    (0..EditKind::ALL.len()).prop_map(|i| EditKind::ALL[i])
}

/// Optional anchor identifiers, as the localizer produces them.
fn arb_opt_name() -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), "[a-z_]{1,8}".prop_map(Some)]
}

fn arb_script_edit() -> impl Strategy<Value = ScriptEdit> {
    (
        arb_edit_kind(),
        arb_opt_name(),
        arb_opt_name(),
        prop_oneof![Just(None), (-4096i128..4096).prop_map(Some)],
        arb_opt_name(),
    )
        .prop_map(|(kind, site, symbol, value, label)| ScriptEdit {
            kind,
            site,
            symbol,
            value,
            label,
        })
}

fn arb_script() -> impl Strategy<Value = EditScript> {
    proptest::collection::vec(arb_script_edit(), 1..6).prop_map(|edits| EditScript { edits })
}

fn arb_pattern() -> impl Strategy<Value = FixPattern> {
    (
        proptest::collection::vec(
            (
                arb_edit_kind(),
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                arb_opt_name(),
            )
                .prop_map(|(kind, has_site, has_symbol, has_value, label)| {
                    PatternEdit {
                        kind,
                        has_site,
                        has_symbol,
                        has_value,
                        label,
                    }
                }),
            1..5,
        ),
        1i128..64,
    )
        .prop_map(|(edits, support)| FixPattern {
            edits,
            support: support as u64,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `EditScript` wire round trip is exact — serialize → parse →
    /// serialize is a fixpoint and parsing recovers the original value —
    /// end to end through the store codec (encode to log text, decode the
    /// typed entry back).
    #[test]
    fn edit_script_wire_round_trips(script in arb_script(), fp in any::<u64>()) {
        use serde::Serialize as _;
        let v1 = script.to_json_value();
        let parsed = EditScript::from_value(&v1).expect("own wire form parses");
        prop_assert_eq!(&parsed, &script);
        prop_assert_eq!(parsed.to_json_value(), v1);

        let key = ScriptKey {
            program_fp: fp,
            kernel: "kernel".to_string(),
            backend: "datacenter".to_string(),
        };
        let line = codec::encode_script(&key, &script);
        match codec::decode_entry(&line) {
            Some(Entry::Script(k, s)) => {
                prop_assert_eq!(k, key);
                prop_assert_eq!(&s, &script);
                // …and re-encoding the decoded value reproduces the bytes.
                prop_assert_eq!(codec::encode_script(&ScriptKey {
                    program_fp: fp,
                    kernel: "kernel".to_string(),
                    backend: "datacenter".to_string(),
                }, &s), line);
            }
            other => prop_assert!(false, "decoded {other:?}"),
        }
    }

    /// Same for `FixPattern`, plus: the mined abstraction of a script keeps
    /// exactly the edit-kind sequence and the context *shape*.
    #[test]
    fn fix_pattern_wire_round_trips(pat in arb_pattern()) {
        use serde::Serialize as _;
        let v1 = pat.to_json_value();
        let parsed = FixPattern::from_value(&v1).expect("own wire form parses");
        prop_assert_eq!(&parsed, &pat);
        prop_assert_eq!(parsed.to_json_value(), v1);

        let line = codec::encode_pattern(&pat);
        match codec::decode_entry(&line) {
            Some(Entry::Pattern(p)) => {
                prop_assert_eq!(codec::encode_pattern(&p), line);
                prop_assert_eq!(p, pat);
            }
            other => prop_assert!(false, "decoded {other:?}"),
        }
    }

    /// The store rejects version-skewed script/pattern records wholesale:
    /// bumping the per-record `v` field makes `decode_entry` return `None`
    /// (the log layer then quarantines from that point), never a
    /// half-parsed entry.
    #[test]
    fn store_rejects_version_skewed_records(script in arb_script(), pat in arb_pattern()) {
        let key = ScriptKey {
            program_fp: 7,
            kernel: "kernel".to_string(),
            backend: "datacenter".to_string(),
        };
        let old = format!("\"v\":{}", codec::RECORD_VERSION);
        let new = format!("\"v\":{}", codec::RECORD_VERSION + 1);
        for line in [codec::encode_script(&key, &script), codec::encode_pattern(&pat)] {
            prop_assert!(line.contains(&old), "record carries its version: {line}");
            let skewed = line.replacen(&old, &new, 1);
            prop_assert!(codec::decode_entry(&line).is_some());
            prop_assert!(
                codec::decode_entry(&skewed).is_none(),
                "version-skewed record must be rejected: {skewed}"
            );
        }
    }

    /// Mining abstraction: every pattern mined from a script set is a
    /// contiguous kind-subsequence of at least one input script, with the
    /// label/shape of the matching edits preserved.
    #[test]
    fn mined_patterns_are_abstracted_subsequences(scripts in proptest::collection::vec(arb_script(), 1..4)) {
        let patterns = repair::mine::mine_patterns(&scripts);
        let abstracted: Vec<Vec<PatternEdit>> = scripts
            .iter()
            .map(|s| s.edits.iter().map(PatternEdit::from_edit).collect())
            .collect();
        for p in &patterns {
            prop_assert!(!p.edits.is_empty());
            prop_assert!(p.support >= 1);
            let matches = abstracted
                .iter()
                .filter(|a| a.windows(p.edits.len()).any(|w| w == p.edits.as_slice()))
                .count() as u64;
            prop_assert_eq!(
                matches, p.support,
                "support must equal the number of distinct scripts containing the shape"
            );
        }
    }
}

// A tiny non-proptest sanity check that the generated strategies build.
#[test]
fn arb_expr_strategy_builds() {
    let _ = arb_expr();
    let _ = Type::int();
}
