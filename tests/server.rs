//! Integration tests for the job server: fair-share admission, graceful
//! drain through the degradation path, and byte-identity between
//! server-executed and directly-run jobs.

use heterogen_core::{HeteroGen, JobSpec, PipelineConfig};
use heterogen_server::{RejectReason, Server, ServerConfig};
use heterogen_toolchain::{
    BackendInfo, Compiled, DrainGate, DrainSignal, SimBackend, Simulated, Toolchain, ToolchainError,
};
use heterogen_trace::JsonlSink;
use minic::Program;
use minic_exec::ArgValue;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn tiny_pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::quick();
    cfg.fuzz.idle_stop_min = 0.2;
    cfg.fuzz.max_execs = 80;
    cfg.fuzz.threads = 1;
    cfg.search.threads = 1;
    cfg
}

fn quick_spec(client: &str, seed: u64) -> JobSpec {
    let p = minic::parse("int kernel(int x) { return x + 1; }").unwrap();
    JobSpec::builder(p, "kernel")
        .client(client)
        .seed(seed)
        .build()
}

/// A heavy client that floods the queue cannot lock a light client out: the
/// round-robin scheduler serves the light client's single job right after
/// the heavy client's first, not after its whole backlog.
#[test]
fn starved_client_is_served_round_robin() {
    let server = Server::start(
        ServerConfig::builder()
            .with_workers(1)
            .with_pipeline(tiny_pipeline())
            .with_paused(true)
            .build(),
    );
    let heavy: Vec<_> = (0..6)
        .map(|i| server.submit(quick_spec("heavy", i)).unwrap())
        .collect();
    let light = server.submit(quick_spec("light", 99)).unwrap();
    server.resume();

    let light_out = light.wait();
    assert_eq!(
        light_out.seq, 2,
        "the light client's job must complete right after heavy's first"
    );
    let heavy_seqs: Vec<u64> = heavy.into_iter().map(|h| h.wait().seq).collect();
    assert_eq!(
        heavy_seqs,
        vec![1, 3, 4, 5, 6, 7],
        "heavy fills the rest, in FIFO order"
    );
    let stats = server.shutdown();
    assert_eq!(stats.completed, 7);
}

/// Shutting down with jobs still queued drains them through the
/// `PhaseBudgets` + revoked-toolchain degradation path: every accepted job
/// still yields `Ok(PipelineReport)`, with a `Degradation` record instead
/// of a full repair.
#[test]
fn shutdown_drains_queued_jobs_as_degraded_reports() {
    let server = Server::start(
        ServerConfig::builder()
            .with_workers(1)
            .with_pipeline(tiny_pipeline())
            .with_paused(true)
            .build(),
    );
    // A job that would normally repair successfully.
    let p = minic::parse("int kernel(int x) { long double y = x; y = y + 1; return y; }").unwrap();
    let handle = server
        .submit(JobSpec::builder(p, "kernel").client("draining").build())
        .unwrap();
    // Shut down before the worker ever picks it up.
    let stats_thread = std::thread::spawn(move || server.shutdown());
    let out = handle.wait();
    let report = out.report.expect("drain degrades, it does not error");
    assert!(!report.success());
    assert!(
        report.degraded(),
        "the drained job must carry a degradation"
    );
    assert!(report.degradations.iter().any(|d| {
        d.phase == "repair"
            && d.reason == heterogen_core::DegradationReason::PermanentFault
            && d.detail.contains("drain")
    }));
    let stats = stats_thread.join().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.failed, 0);
}

/// A backend that flips a [`DrainSignal`] after a fixed number of compiles
/// — deterministic "the server began draining mid-search".
struct FlipAfter {
    inner: SimBackend,
    signal: DrainSignal,
    remaining: AtomicI64,
}

impl Toolchain for FlipAfter {
    fn info(&self) -> BackendInfo {
        self.inner.info()
    }
    fn cost_model(&self) -> heterogen_toolchain::CompileCostModel {
        self.inner.cost_model()
    }
    fn style_check(&self, p: &Program) -> Vec<heterogen_toolchain::StyleViolation> {
        self.inner.style_check(p)
    }
    fn compile(&self, p: &Program, key: u64) -> Result<Compiled, ToolchainError> {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) <= 1 {
            self.signal.drain();
        }
        self.inner.compile(p, key)
    }
    fn simulate(
        &self,
        p: &Program,
        args: &[ArgValue],
        key: u64,
    ) -> Result<Simulated, ToolchainError> {
        self.inner.simulate(p, args, key)
    }
}

/// The drain signal flipping *mid-search* (after the search has already
/// evaluated candidates) revokes the remaining budget: the run still
/// returns `Ok(PipelineReport)` with a permanent-fault `Degradation`, never
/// an error or a panic.
#[test]
fn drain_mid_search_degrades_the_in_flight_job() {
    // A subject whose repair search evaluates ~20 candidates under the tiny
    // pipeline, so a flip after 4 compiles lands squarely mid-search.
    let p = minic::parse(
        "int kernel(int n) { int a[10]; for (int i = 0; i < 10; i++) { a[i] = i * n; } \
         int s = 0; for (int i = 0; i < 10; i++) { s += a[i]; } return s; }",
    )
    .unwrap();
    let signal = DrainSignal::new();
    let backend = DrainGate::new(
        FlipAfter {
            inner: SimBackend::default_profile(),
            signal: signal.clone(),
            // 1 compile for the initial diagnosis, 1 for the search's
            // initial candidate, then a few evaluated candidates before the
            // signal flips mid-frontier.
            remaining: AtomicI64::new(4),
        },
        signal.clone(),
    );
    let session = HeteroGen::builder()
        .config(tiny_pipeline())
        .backend(backend)
        .build();
    let report = session
        .run(JobSpec::fuzz(p, "kernel", vec![]))
        .expect("a mid-search drain degrades, it does not error");
    assert!(signal.is_draining(), "the flip must have happened");
    assert!(report.degraded());
    assert!(report.degradations.iter().any(|d| {
        d.phase == "repair"
            && d.reason == heterogen_core::DegradationReason::PermanentFault
            && d.detail.contains("drain")
    }));
    assert!(
        report.repair.full_compiles >= 2,
        "the search must have been genuinely in flight"
    );
}

/// Queue churn, per-client share: a client that fills its fair share is
/// refused with `ClientSaturated` (keeping its queued work), an idle
/// client is still admitted past it, and after backing off until the
/// backlog drains the saturated client is admitted again — pinned at
/// 1, 2, and 4 workers.
#[test]
fn saturated_client_backs_off_and_is_admitted() {
    for workers in [1usize, 2, 4] {
        let per_client = 3u64;
        let server = Server::start(
            ServerConfig::builder()
                .with_workers(workers)
                .with_per_client_queue(per_client as usize)
                .with_pipeline(tiny_pipeline())
                .with_paused(true)
                .build(),
        );
        // Fill the bursty client's share while the queue is paused, so the
        // saturation point is deterministic at every worker count.
        let backlog: Vec<_> = (0..per_client)
            .map(|i| server.submit(quick_spec("bursty", i)).unwrap())
            .collect();
        let rejected = server.submit(quick_spec("bursty", 99)).unwrap_err();
        assert_eq!(
            rejected.reason,
            RejectReason::ClientSaturated,
            "@ {workers} workers"
        );
        assert_eq!(rejected.client, "bursty");
        // Fair share is per client: another client still gets in.
        let patient = server.submit(quick_spec("patient", 7)).unwrap();

        // Back off: let the pool drain the backlog, then retry.
        server.resume();
        for h in backlog {
            assert!(h.wait().report.is_ok(), "@ {workers} workers");
        }
        let readmitted = server
            .submit(quick_spec("bursty", 99))
            .expect("the drained share must readmit the client");
        assert!(readmitted.wait().report.is_ok());
        assert!(patient.wait().report.is_ok());

        let stats = server.shutdown();
        assert_eq!(stats.accepted, per_client + 2, "@ {workers} workers");
        assert_eq!(stats.rejected_client_saturated, 1, "@ {workers} workers");
        assert_eq!(stats.completed, per_client + 2, "@ {workers} workers");
        assert_eq!(stats.failed, 0, "@ {workers} workers");
    }
}

/// Queue churn, global cap: when the server-wide queue is smaller than a
/// client's share, `QueueFull` binds first; draining the queue makes the
/// same submission admissible.
#[test]
fn queue_full_binds_before_client_share() {
    let server = Server::start(
        ServerConfig::builder()
            .with_workers(1)
            .with_queue_capacity(2)
            .with_per_client_queue(8)
            .with_pipeline(tiny_pipeline())
            .with_paused(true)
            .build(),
    );
    let first = server.submit(quick_spec("a", 1)).unwrap();
    let second = server.submit(quick_spec("b", 2)).unwrap();
    let rejected = server.submit(quick_spec("c", 3)).unwrap_err();
    assert_eq!(rejected.reason, RejectReason::QueueFull);
    assert_eq!(rejected.client, "c");

    server.resume();
    assert!(first.wait().report.is_ok());
    assert!(second.wait().report.is_ok());
    let admitted = server
        .submit(quick_spec("c", 3))
        .expect("a drained queue must have room again");
    assert!(admitted.wait().report.is_ok());

    let stats = server.shutdown();
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
}

/// The acceptance bar for serving: a job executed by the server is
/// byte-identical — report JSON and captured trace stream — to the same
/// `JobSpec` run through a `Session` directly, at every worker count.
#[test]
fn server_execution_is_byte_identical_to_direct_session() {
    let pipeline = tiny_pipeline();
    let programs = [
        "int kernel(int x) { return x + 1; }",
        "int kernel(int x) { long double y = x; y = y + 1; return y; }",
        "int kernel(int a[4]) { int s = 0; for (int i = 0; i < 4; i++) { s += a[i]; } return s; }",
    ];
    let specs: Vec<JobSpec> = programs
        .iter()
        .enumerate()
        .flat_map(|(i, src)| {
            let p = minic::parse(src).unwrap();
            let mk = |backend: Option<&str>, seed: u64| {
                let mut b = JobSpec::builder(p.clone(), "kernel")
                    .client(format!("client-{i}"))
                    .seed(seed);
                if let Some(name) = backend {
                    b = b.backend(name);
                }
                b.build()
            };
            [mk(None, i as u64), mk(Some("embedded"), 100 + i as u64)]
        })
        .collect();

    // The reference: each spec through a plain Session with a JSONL sink.
    let direct: Vec<(String, String)> = specs
        .iter()
        .map(|spec| {
            let sink = Arc::new(JsonlSink::new());
            let session = HeteroGen::builder()
                .config(pipeline.clone())
                .sink(sink.clone())
                .build();
            let report = session.run(spec.clone()).unwrap();
            (serde_json::to_string(&report).unwrap(), sink.contents())
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let server = Server::start(
            ServerConfig::builder()
                .with_workers(workers)
                .with_pipeline(pipeline.clone())
                .with_capture_traces(true)
                .build(),
        );
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| server.submit(spec.clone()).unwrap())
            .collect();
        for (handle, (want_report, want_trace)) in handles.into_iter().zip(&direct) {
            let out = handle.wait();
            let got_report = serde_json::to_string(&out.report.unwrap()).unwrap();
            assert_eq!(&got_report, want_report, "report bytes @ {workers} workers");
            assert_eq!(
                out.trace.as_deref(),
                Some(want_trace.as_str()),
                "trace bytes @ {workers} workers"
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed as usize, specs.len());
        assert_eq!(stats.failed, 0);
    }
}
