//! Offline stand-in for `serde`.
//!
//! The workspace only ever does one thing with serde: `#[derive(Serialize)]`
//! on plain structs, then `serde_json::to_string_pretty`. So instead of the
//! full serde data model, `Serialize` here converts straight to an in-memory
//! JSON [`Value`] that `serde_json` renders.

/// In-memory JSON document. Object fields keep declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Conversion to a JSON value; the derive macro generates impls of this.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn to_json_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // Sort for stable output; HashMap iteration order is unspecified.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;
