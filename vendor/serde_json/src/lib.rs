//! Offline stand-in for `serde_json`: renders the serde stub's [`Value`]
//! as JSON text, and parses JSON text back into a [`Value`] for the few
//! places that need to inspect their own wire output.

pub use serde::Value;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse a JSON document into a [`Value`]. Integers without a fraction or
/// exponent become [`Value::Int`]; everything else numeric is a
/// [`Value::Float`]. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(Error(format!("expected `{token}` at byte {pos}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        let rest = &bytes[*pos..];
        let Some(&b) = rest.first() else {
            return Err(Error("unterminated string".into()));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = bytes
                    .get(*pos + 1)
                    .ok_or_else(|| Error("unterminated escape".into()))?;
                *pos += 2;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                        *pos += 4;
                        // Surrogates and other invalid scalars degrade to
                        // U+FFFD; the workspace never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(Error(format!("bad escape `\\{}`", *other as char))),
                }
            }
            _ => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let s = std::str::from_utf8(rest).map_err(|e| Error(e.to_string()))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| Error(e.to_string()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected a value at byte {start}")));
    }
    if float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => render_float(*x, out),
        Value::Str(s) => render_str(s, out),
        Value::Array(xs) => render_seq(xs.iter(), ('[', ']'), indent, depth, out, |x, d, o| {
            render(x, indent, d, o)
        }),
        Value::Object(fields) => render_seq(
            fields.iter(),
            ('{', '}'),
            indent,
            depth,
            out,
            |(k, x), d, o| {
                render_str(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                render(x, indent, d, o);
            },
        ),
    }
}

fn render_seq<I, T>(
    items: I,
    (open, close): (char, char),
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut each: impl FnMut(T, usize, &mut String),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        each(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn render_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        // serde_json serializes non-finite floats as null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Float(1.0)),
            ("c".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Str("x\"y\n".into())),
        ]);
        let s = to_string_pretty(&v_wrap(&v)).unwrap();
        assert!(s.contains("\"a\": 3"));
        assert!(s.contains("\"b\": 1.0"));
        assert!(s.contains("true"));
        assert!(s.contains("\\\"y\\n"));
        let flat = to_string(&v_wrap(&v)).unwrap();
        assert!(!flat.contains('\n'));
    }

    #[test]
    fn parses_what_it_renders() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-42)),
            ("b".into(), Value::Float(1.5)),
            ("c".into(), Value::Array(vec![Value::Bool(false), Value::Null])),
            ("d".into(), Value::Str("x\"y\nß\u{1}".into())),
            ("e".into(), Value::Object(vec![])),
        ]);
        let flat = to_string(&v_wrap(&v)).unwrap();
        assert_eq!(from_str(&flat).unwrap(), v);
        let pretty = to_string_pretty(&v_wrap(&v)).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":1,}").is_err());
        assert!(from_str("[1 2]").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("{} trailing").is_err());
    }

    #[test]
    fn value_accessors_navigate_objects() {
        let v = from_str("{\"schema_version\": 3, \"name\": \"x\"}").unwrap();
        assert_eq!(v.get("schema_version").and_then(Value::as_i128), Some(3));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }

    /// Wrap a raw Value so it goes through the Serialize trait like a
    /// derived struct would.
    struct W<'a>(&'a Value);
    impl serde::Serialize for W<'_> {
        fn to_json_value(&self) -> Value {
            self.0.clone()
        }
    }
    fn v_wrap(v: &Value) -> W<'_> {
        W(v)
    }
}
