//! Offline stand-in for `serde_json`: renders the serde stub's [`Value`]
//! as JSON text. Only the serializer half exists — nothing in the
//! workspace deserializes.

pub use serde::Value;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => render_float(*x, out),
        Value::Str(s) => render_str(s, out),
        Value::Array(xs) => render_seq(xs.iter(), ('[', ']'), indent, depth, out, |x, d, o| {
            render(x, indent, d, o)
        }),
        Value::Object(fields) => render_seq(
            fields.iter(),
            ('{', '}'),
            indent,
            depth,
            out,
            |(k, x), d, o| {
                render_str(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                render(x, indent, d, o);
            },
        ),
    }
}

fn render_seq<I, T>(
    items: I,
    (open, close): (char, char),
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut each: impl FnMut(T, usize, &mut String),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        each(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn render_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        // serde_json serializes non-finite floats as null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Float(1.0)),
            ("c".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Str("x\"y\n".into())),
        ]);
        let s = to_string_pretty(&v_wrap(&v)).unwrap();
        assert!(s.contains("\"a\": 3"));
        assert!(s.contains("\"b\": 1.0"));
        assert!(s.contains("true"));
        assert!(s.contains("\\\"y\\n"));
        let flat = to_string(&v_wrap(&v)).unwrap();
        assert!(!flat.contains('\n'));
    }

    /// Wrap a raw Value so it goes through the Serialize trait like a
    /// derived struct would.
    struct W<'a>(&'a Value);
    impl serde::Serialize for W<'_> {
        fn to_json_value(&self) -> Value {
            self.0.clone()
        }
    }
    fn v_wrap(v: &Value) -> W<'_> {
        W(v)
    }
}
