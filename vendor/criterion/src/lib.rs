//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_function`, `iter`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros — with a simple time-boxed measurement loop
//! that prints a mean time per iteration. No statistics, plots, or
//! baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark measurement budget; keeps full bench runs fast.
const TIME_BOX: Duration = Duration::from_millis(300);

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 100, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        max_samples: sample_size.max(1) as u64,
        iters: 0,
        total: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {label:<50} (no iterations)");
    } else {
        let per = b.total.as_nanos() / b.iters as u128;
        println!("bench {label:<50} {per:>12} ns/iter ({} iters)", b.iters);
    }
}

pub struct Bencher {
    max_samples: u64,
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        std::hint::black_box(routine());
        let started = Instant::now();
        for _ in 0..self.max_samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() > TIME_BOX {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let started = Instant::now();
        for _ in 0..self.max_samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() > TIME_BOX {
                break;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Re-export so benches can `use criterion::black_box` as upstream allows.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| ()));
    }
}
