//! Offline stand-in for `proptest`.
//!
//! Implements the strategy-combinator subset this workspace's property tests
//! use: ranges, `any`, `Just`, `prop_map`, `prop_oneof!`, `prop_recursive`,
//! `collection::vec`, simple `[a-z]{m,n}` string-regex strategies, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros. Sampling is
//! deterministic per test (seeded from the test name); failing cases are
//! reported but not shrunk.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ------------------------------------------------------------------ rng

/// SplitMix64; deterministic per seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Deterministic per-test stream: seed from an FNV hash of the name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform in `[0, n)`, n > 0.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        self.next_u128() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ------------------------------------------------------------ outcomes

#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The generated inputs don't satisfy a `prop_assume!`; retry.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Runner configuration; only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

// ------------------------------------------------------------ strategy

/// A generator of values. Unlike real proptest there is no value tree and
/// no shrinking: a strategy just samples.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `depth` levels of `recurse` stacked over the
    /// leaf, choosing leaf-vs-branch uniformly at each level. The size
    /// hints of real proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
        }
        cur
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u128) as usize;
        self.arms[i].gen_value(rng)
    }
}

// ----------------------------------------------------- range strategies

macro_rules! strategy_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(width as u128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = ((hi as $u).wrapping_sub(lo as $u) as u128).wrapping_add(1);
                if width == 0 {
                    return rng.next_u128() as $t;
                }
                lo.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}
strategy_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// -------------------------------------------------------- any / tuples

/// Full-domain generation for primitives (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly moderate magnitudes, occasionally raw bit patterns.
        if rng.next_u64() % 8 == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            (rng.unit_f64() * 2.0 - 1.0) * 1.0e9
        }
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        any::<T>()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
strategy_tuple!(
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

// -------------------------------------------------- collection / regex

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u128) as usize
            };
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// String-regex strategies: a `&str` used as a strategy generates matching
/// strings. Supports literal chars, `[a-z0-9_]`-style classes (ranges and
/// singletons), and `{m}` / `{m,n}` / `?` / `+` / `*` quantifiers — the
/// subset the workspace's patterns use.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi {
                *lo
            } else {
                lo + rng.below((hi - lo + 1) as u128) as usize
            };
            for _ in 0..n {
                let i = rng.below(chars.len() as u128) as usize;
                out.push(chars[i]);
            }
        }
        out
    }
}

/// Each atom: (candidate characters, min repeats, max repeats).
fn parse_regex(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<(Vec<char>, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pat:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("regex {m,n} lower bound"),
                        b.trim().parse().expect("regex {m,n} upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("regex {n} count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(!alphabet.is_empty(), "empty character class in {pat:?}");
        atoms.push((alphabet, lo, hi));
    }
    atoms
}

// ------------------------------------------------------------- macros

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(::std::stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(::std::stringify!($name));
            // Bind each strategy once, shadowing the arg name.
            $(let $arg = $strat;)+
            let mut __done: u32 = 0;
            let mut __rejects: u32 = 0;
            while __done < __config.cases {
                // Shadow again with one sampled value per argument.
                $(let $arg = $crate::Strategy::gen_value(&$arg, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __done += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                        __rejects += 1;
                        if __rejects > __config.max_global_rejects {
                            ::std::panic!(
                                "proptest {}: too many rejects (last: {})",
                                ::std::stringify!($name),
                                __why
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest {} failed after {} passing case(s):\n{}",
                            ::std::stringify!($name),
                            __done,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

// -------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = Strategy::gen_value(&(-10i128..10), &mut rng);
            assert!((-10..10).contains(&v));
            let xs = Strategy::gen_value(&crate::collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = crate::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-d]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn recursion_terminates() {
        let leaf = (0i64..10).prop_map(|x| x);
        let strat = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        let mut rng = crate::TestRng::for_test("recursion");
        for _ in 0..100 {
            let _ = Strategy::gen_value(&strat, &mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(a in 0u64..100, b in any::<bool>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
        }
    }
}
