//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this crate re-implements exactly the deterministic subset of the rand 0.8
//! API that the workspace uses: `SmallRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` over primitive integer/float ranges, and
//! `seq::SliceRandom::{choose, shuffle}`.
//!
//! The generator is SplitMix64 — statistically fine for fuzzing/search and
//! fully deterministic for a given seed, which is all the workspace needs.
//! Streams differ from upstream rand, but no test depends on upstream's
//! exact output, only on seed-determinism.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// 128 uniform bits.
fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// Uniform draw in `[0, n)` (n > 0). Modulo bias is negligible for the
/// range widths this workspace samples and determinism is all that matters.
fn draw_below<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    next_u128(rng) % n
}

/// A type samplable from raw bits via the `Standard` distribution
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_u128(rng)
    }
}
impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_u128(rng) as i128
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A type uniformly samplable from a bounded interval. Keeping this as one
/// blanket-implemented pair of range impls (rather than per-type range
/// impls) matters for inference: `rng.gen_range(0..xs.len())` must unify
/// the literal with the output type exactly as upstream rand does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let width = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(draw_below(rng, width as u128) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let width = ((hi as $u).wrapping_sub(lo as $u) as u128).wrapping_add(1);
                if width == 0 {
                    // Full-domain range of a 128-bit type.
                    return next_u128(rng) as $t;
                }
                lo.wrapping_add(draw_below(rng, width) as $t)
            }
        }
    )*};
}
uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_exclusive(rng, lo, hi)
    }
}

/// A range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing convenience trait, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one u64 of state, full-period, seed-deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Scramble the seed so nearby seeds give unrelated streams.
            SmallRng {
                state: state
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17)
                    ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    /// Alias: the workspace only ever seeds deterministically.
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// `choose` / `shuffle` over slices, as in rand 0.8.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i128..=5);
            assert!((-5..=5).contains(&v));
            let u = r.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_bool() {
        let mut r = SmallRng::seed_from_u64(9);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut r).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let _ = r.gen_bool(0.5);
    }
}
