//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for plain (non-generic, named-field)
//! structs — the only shape this workspace derives — without syn/quote:
//! the struct's field names are scraped directly off the token stream and
//! the impl is emitted as formatted source.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility before `struct`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                // `pub(crate)` etc: skip the parenthesized restriction.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if *id.to_string() == *"struct" => break,
            _ => i += 1,
        }
    }
    assert!(
        matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if *id.to_string() == *"struct"),
        "derive(Serialize) stub supports only structs"
    );
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };
    i += 1;

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize) stub does not support generic structs")
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize) stub supports only named-field structs"),
        }
    };

    let fields = field_names(body.stream());
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_json_value(&self.{f})),"
            )
        })
        .collect();

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Extract field names from the brace-group token stream of a struct body:
/// for each top-level comma-separated field, the identifier before the first
/// top-level `:` (skipping attributes and visibility).
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut expecting_name = true;
    let mut angle_depth = 0i32;
    let mut pending: Option<String> = None;

    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                // Field attribute: `#` followed by a bracket group.
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s != "pub" {
                    pending = Some(s);
                    expecting_name = false;
                }
            }
            TokenTree::Punct(p) => match p.as_char() {
                ':' if angle_depth == 0 => {
                    if let Some(name) = pending.take() {
                        fields.push(name);
                    }
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => expecting_name = true,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    fields
}
